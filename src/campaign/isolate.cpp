#include "campaign/isolate.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "campaign/journal.hpp"
#include "campaign/jsonio.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace gttsch::campaign {
namespace {

using jsonio::Cursor;
using jsonio::escape;
using jsonio::fmt_double;
using jsonio::parse_object;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// ------------------------------------------ config field tables --------
// Every ScenarioConfig field, serialized *exactly*: times stay in µs and
// seeds in full 64-bit, unlike apply_field's user-facing seconds grammar
// (which also lacks non-sweepable fields like `drain`). The writer and
// parser share these tables so they cannot drift; the static_assert below
// fires when ScenarioConfig changes shape.

struct CfgString {
  const char* name;
  std::string ScenarioConfig::*member;
};
struct CfgDouble {
  const char* name;
  double ScenarioConfig::*member;
};
struct CfgU64 {
  const char* name;
  std::uint64_t ScenarioConfig::*member;
};
struct CfgTime {
  const char* name;
  TimeUs ScenarioConfig::*member;
};
struct CfgInt {
  const char* name;
  int ScenarioConfig::*member;
};
struct CfgU16 {
  const char* name;
  std::uint16_t ScenarioConfig::*member;
};
struct CfgBool {
  const char* name;
  bool ScenarioConfig::*member;
};

constexpr CfgString kStrings[] = {
    {"scheduler", &ScenarioConfig::scheduler},
    {"trace", &ScenarioConfig::trace},
};
constexpr CfgDouble kDoubles[] = {
    {"hop_distance", &ScenarioConfig::hop_distance},
    {"disk_radius", &ScenarioConfig::disk_radius},
    {"radio_range", &ScenarioConfig::radio_range},
    {"interference_factor", &ScenarioConfig::interference_factor},
    {"link_prr", &ScenarioConfig::link_prr},
    {"traffic_ppm", &ScenarioConfig::traffic_ppm},
    {"alpha", &ScenarioConfig::alpha},
    {"beta", &ScenarioConfig::beta},
    {"gamma", &ScenarioConfig::gamma},
    {"trace_speed_mps", &ScenarioConfig::trace_speed_mps},
    {"trace_interval_s", &ScenarioConfig::trace_interval_s},
    {"trace_fail_at_s", &ScenarioConfig::trace_fail_at_s},
    {"trace_down_s", &ScenarioConfig::trace_down_s},
    {"trace_cycle_s", &ScenarioConfig::trace_cycle_s},
};
constexpr CfgU64 kU64s[] = {
    {"topology_seed", &ScenarioConfig::topology_seed},
    {"trace_seed", &ScenarioConfig::trace_seed},
    {"seed", &ScenarioConfig::seed},
};
constexpr CfgTime kTimes[] = {
    {"warmup_us", &ScenarioConfig::warmup},
    {"measure_us", &ScenarioConfig::measure},
    {"drain_us", &ScenarioConfig::drain},
};
constexpr CfgInt kInts[] = {
    {"dodag_count", &ScenarioConfig::dodag_count},
    {"nodes_per_dodag", &ScenarioConfig::nodes_per_dodag},
    {"topology_nodes", &ScenarioConfig::topology_nodes},
    {"trace_movers", &ScenarioConfig::trace_movers},
    {"trace_fail_count", &ScenarioConfig::trace_fail_count},
};
constexpr CfgU16 kU16s[] = {
    {"gt_slotframe_length", &ScenarioConfig::gt_slotframe_length},
    {"orchestra_unicast_length", &ScenarioConfig::orchestra_unicast_length},
    {"alice_unicast_length", &ScenarioConfig::alice_unicast_length},
    {"emsf_slotframe_length", &ScenarioConfig::emsf_slotframe_length},
};
constexpr CfgBool kBools[] = {
    {"orchestra_channel_hash", &ScenarioConfig::orchestra_channel_hash},
    {"enforce_tx_margin", &ScenarioConfig::enforce_tx_margin},
    {"enforce_interleave", &ScenarioConfig::enforce_interleave},
};
// Plus, handled individually below: topology / trace_kind (enums as
// ordinals) and queue_capacity (size_t). `parallel_islands` is left out
// on purpose: it is an execution knob with bit-identical results, and
// isolated children always run sequentially (one lane per job keeps the
// worker budget with the campaign pool).
#if (defined(__x86_64__) || defined(__aarch64__)) && defined(_GLIBCXX_RELEASE)
static_assert(sizeof(ScenarioConfig) == 304,
              "ScenarioConfig changed: add the new field to the envelope "
              "tables above, then update this size");
#endif

void render_config(const ScenarioConfig& c, std::string* out) {
  *out += '{';
  bool first = true;
  const auto key = [&](const char* name) {
    if (!first) *out += ", ";
    first = false;
    *out += '"';
    *out += name;
    *out += "\": ";
  };
  for (const CfgString& f : kStrings) {
    key(f.name);
    *out += '"' + escape(c.*f.member) + '"';
  }
  key("topology");
  *out += std::to_string(static_cast<std::uint64_t>(c.topology));
  key("trace_kind");
  *out += std::to_string(static_cast<std::uint64_t>(c.trace_kind));
  key("queue_capacity");
  *out += std::to_string(static_cast<std::uint64_t>(c.queue_capacity));
  for (const CfgDouble& f : kDoubles) {
    key(f.name);
    *out += fmt_double(c.*f.member);
  }
  for (const CfgU64& f : kU64s) {
    key(f.name);
    *out += std::to_string(c.*f.member);
  }
  for (const CfgTime& f : kTimes) {
    key(f.name);
    *out += std::to_string(c.*f.member);
  }
  for (const CfgInt& f : kInts) {
    key(f.name);
    *out += std::to_string(c.*f.member);
  }
  for (const CfgU16& f : kU16s) {
    key(f.name);
    *out += std::to_string(c.*f.member);
  }
  for (const CfgBool& f : kBools) {
    key(f.name);
    *out += (c.*f.member) ? "true" : "false";
  }
  *out += '}';
}

bool parse_config(Cursor& cur, ScenarioConfig* c) {
  return parse_object(cur, [&](const std::string& name) {
    for (const CfgString& f : kStrings) {
      if (name == f.name) return cur.parse_string(&(c->*f.member));
    }
    if (name == "topology") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v) ||
          v > static_cast<std::uint64_t>(TopologyKind::kRandomDisk)) {
        return false;
      }
      c->topology = static_cast<TopologyKind>(v);
      return true;
    }
    if (name == "trace_kind") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v) ||
          v > static_cast<std::uint64_t>(TraceKind::kCrashloop)) {
        return false;
      }
      c->trace_kind = static_cast<TraceKind>(v);
      return true;
    }
    if (name == "queue_capacity") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v)) return false;
      c->queue_capacity = static_cast<std::size_t>(v);
      return true;
    }
    for (const CfgDouble& f : kDoubles) {
      if (name == f.name) return cur.parse_double(&(c->*f.member));
    }
    for (const CfgU64& f : kU64s) {
      if (name == f.name) return cur.parse_u64(&(c->*f.member));
    }
    for (const CfgTime& f : kTimes) {
      if (name == f.name) return cur.parse_i64(&(c->*f.member));
    }
    for (const CfgInt& f : kInts) {
      if (name == f.name) {
        std::int64_t v = 0;
        if (!cur.parse_i64(&v)) return false;
        c->*f.member = static_cast<int>(v);
        return true;
      }
    }
    for (const CfgU16& f : kU16s) {
      if (name == f.name) {
        std::uint64_t v = 0;
        if (!cur.parse_u64(&v) || v > 0xFFFF) return false;
        c->*f.member = static_cast<std::uint16_t>(v);
        return true;
      }
    }
    for (const CfgBool& f : kBools) {
      if (name == f.name) return cur.parse_bool(&(c->*f.member));
    }
    return cur.skip_value();  // unknown keys: forward compat
  });
}

JobOutcome failed_outcome(const std::string& detail) {
  JobOutcome out;
  out.status = JobStatus::kFailed;
  out.detail = detail;
  return out;
}

/// Test-only chaos hook: GTTSCH_CHAOS_POINT=<label>:<crash|hang> makes the
/// child for that grid point die (SIGABRT) or livelock — exercised by the
/// CI chaos smoke and the fault CLI test. The label is everything before
/// the LAST colon, so labels containing ':' still match.
void apply_chaos_hook(const std::string& label) {
  const char* env = std::getenv("GTTSCH_CHAOS_POINT");
  if (env == nullptr) return;
  const std::string spec = env;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || spec.substr(0, colon) != label) return;
  const std::string mode = spec.substr(colon + 1);
  if (mode == "crash") std::abort();
  if (mode == "hang") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

}  // namespace

std::string render_job_envelope(const JobEnvelope& e) {
  std::string out = "{\"point_index\": " + std::to_string(e.point_index) +
                    ", \"seed_index\": " + std::to_string(e.seed_index) +
                    ", \"label\": \"" + escape(e.label) + "\", \"config\": ";
  render_config(e.config, &out);
  out += '}';
  return out;
}

bool parse_job_envelope(const std::string& line, JobEnvelope* out,
                        std::string* error) {
  *out = JobEnvelope{};
  Cursor cur(line);
  const bool ok = parse_object(cur, [&](const std::string& key) {
    if (key == "point_index") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v)) return false;
      out->point_index = static_cast<std::size_t>(v);
      return true;
    }
    if (key == "seed_index") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v)) return false;
      out->seed_index = static_cast<std::size_t>(v);
      return true;
    }
    if (key == "label") return cur.parse_string(&out->label);
    if (key == "config") return parse_config(cur, &out->config);
    return cur.skip_value();
  });
  if (!ok || !cur.at_end()) {
    return fail(error, "malformed job envelope: " +
                           (line.size() > 80 ? line.substr(0, 80) + "..." : line));
  }
  return true;
}

int run_job_protocol(std::FILE* in, std::FILE* out) {
  std::string line;
  for (int c = std::fgetc(in); c != EOF && c != '\n'; c = std::fgetc(in)) {
    line += static_cast<char>(c);
  }
  JobEnvelope envelope;
  std::string error;
  if (!parse_job_envelope(line, &envelope, &error)) {
    std::fprintf(stderr, "run-job: %s\n", error.c_str());
    return 2;
  }
  apply_chaos_hook(envelope.label);

  JournalRecord record;
  record.point_index = envelope.point_index;
  record.seed_index = envelope.seed_index;
  record.seed = envelope.config.seed;
  record.label = envelope.label;
  record.result = run_scenario(envelope.config);

  const std::string rendered = render_journal_line(record);
  if (std::fputs(rendered.c_str(), out) == EOF || std::fputc('\n', out) == EOF) {
    return 1;
  }
  std::fflush(out);
  return std::ferror(out) != 0 ? 1 : 0;
}

#if defined(_WIN32)

JobOutcome run_job_isolated(const std::string&, double, const JobEnvelope&) {
  return failed_outcome("--isolate is not supported on this platform");
}

#else

#if defined(__linux__) || defined(__FreeBSD__) || defined(__NetBSD__) || \
    defined(__OpenBSD__)
#define GTTSCH_HAVE_PIPE2 1
#else
#define GTTSCH_HAVE_PIPE2 0
#endif

namespace {

// The protocol pipes must be O_CLOEXEC: worker threads run
// run_job_isolated concurrently, and a sibling job's fork() landing
// between our pipe() and the parent-side close() below hands the
// sibling's child copies of these fds that survive its exec for that
// child's whole lifetime. A leaked from_child[1] write end means this
// job's parent never sees EOF after its own child exits — a hung sibling
// then blocks a finished healthy job forever (no --job-timeout) or gets
// it misclassified kTimeout. dup2 in the child clears CLOEXEC on the
// stdio copies, so the pipes still cross the exec as fds 0/1.
bool pipe_cloexec(int fds[2]) {
#if GTTSCH_HAVE_PIPE2
  return ::pipe2(fds, O_CLOEXEC) == 0;
#else
  if (::pipe(fds) != 0) return false;
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  return true;
#endif
}

#if !GTTSCH_HAVE_PIPE2
// Without atomic pipe2, FD_CLOEXEC lands an instant after the fds exist;
// serializing every pipe+fork sequence closes that last window too.
std::mutex g_spawn_mutex;
#endif

}  // namespace

JobOutcome run_job_isolated(const std::string& exec_path, double timeout_s,
                            const JobEnvelope& envelope) {
  // A child dying before it reads the whole envelope turns our write into
  // SIGPIPE; classify that via waitpid instead of dying with it.
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] { ::signal(SIGPIPE, SIG_IGN); });

#if !GTTSCH_HAVE_PIPE2
  std::unique_lock<std::mutex> spawn_lock(g_spawn_mutex);
#endif
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (!pipe_cloexec(to_child)) {
    return failed_outcome(std::string("pipe() failed: ") + std::strerror(errno));
  }
  if (!pipe_cloexec(from_child)) {
    const std::string detail = std::strerror(errno);
    ::close(to_child[0]);
    ::close(to_child[1]);
    return failed_outcome("pipe() failed: " + detail);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const std::string detail = std::strerror(errno);
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      ::close(fd);
    return failed_outcome("fork() failed: " + detail);
  }
  if (pid == 0) {
    // Child: protocol pipes become stdin/stdout, then re-enter the tool.
    // fork() in a multithreaded parent leaves only this thread alive, so
    // nothing but async-signal-safe calls until exec.
    //
    // Own process group first: a terminal Ctrl-C delivers SIGINT to the
    // whole foreground group, which would kill every in-flight child and
    // journal them quarantined — contradicting the drain-on-first-SIGINT
    // contract (and a later plain --resume would skip them). The timeout
    // watchdog kills by pid, so leaving the group costs nothing.
    ::setpgid(0, 0);
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      ::close(fd);
    ::execl(exec_path.c_str(), exec_path.c_str(), "run-job",
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed; parent reports kFailed with exit_code 127
  }
#if !GTTSCH_HAVE_PIPE2
  spawn_lock.unlock();  // fds are CLOEXEC now; sibling forks are harmless
#endif
  ::close(to_child[0]);
  ::close(from_child[1]);

  {
    const std::string line = render_job_envelope(envelope) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::write(to_child[1], line.data() + off, line.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EPIPE etc.: the child died early; waitpid classifies it
    }
  }
  ::close(to_child[1]);

  // Drain the child's stdout under the wall-clock deadline.
  using Clock = std::chrono::steady_clock;
  const bool bounded = timeout_s > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(bounded ? timeout_s : 0));
  std::string output;
  bool timed_out = false;
  char buf[4096];
  for (;;) {
    int wait_ms = -1;
    if (bounded) {
      const long long left_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count();
      if (left_ms <= 0) {
        timed_out = true;
        break;
      }
      wait_ms = static_cast<int>(std::min<long long>(left_ms, 60'000));
    }
    struct pollfd pfd;
    pfd.fd = from_child[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int polled = ::poll(&pfd, 1, wait_ms);
    if (polled < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (polled == 0) continue;  // poll timeout: re-check the deadline
    const ssize_t n = ::read(from_child[0], buf, sizeof buf);
    if (n > 0) {
      output.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (child exited) or read error
  }
  ::close(from_child[0]);

  if (timed_out) ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  JobOutcome out;
  if (timed_out) {
    out.status = JobStatus::kTimeout;
    out.detail = "job exceeded the --job-timeout wall-clock budget";
    return out;
  }
  if (WIFSIGNALED(status)) {
    out.status = JobStatus::kCrashed;
    out.term_signal = WTERMSIG(status);
    out.detail = "child killed by signal " + std::to_string(out.term_signal);
    return out;
  }
  const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (exit_code != 0) {
    out.status = JobStatus::kFailed;
    out.exit_code = exit_code;
    out.detail = "child exited with code " + std::to_string(exit_code);
    return out;
  }

  // The child's stdout carries exactly one journal-record line; take the
  // last non-empty line defensively.
  while (!output.empty() && (output.back() == '\n' || output.back() == '\r')) {
    output.pop_back();
  }
  const std::size_t nl = output.rfind('\n');
  const std::string line =
      nl == std::string::npos ? output : output.substr(nl + 1);
  JournalRecord record;
  std::string error;
  if (line.empty() || !parse_journal_line(line, &record, &error)) {
    return failed_outcome("child exited 0 but produced no parsable result" +
                          (error.empty() ? "" : ": " + error));
  }
  if (record.point_index != envelope.point_index ||
      record.seed_index != envelope.seed_index) {
    return failed_outcome("child result identifies a different job");
  }
  out.result = record.result;
  return out;
}

#endif  // !_WIN32

}  // namespace gttsch::campaign
