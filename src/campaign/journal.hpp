// Append-only JSONL results journal: one line per completed (grid point,
// seed) job, carrying the full ExperimentResult at %.17g precision so a
// resumed or merged campaign re-aggregates bit-identically to an
// uninterrupted run.
//
// Crash safety: every append is a single write of one complete line
// followed by a flush, so a killed campaign leaves at most a truncated
// final line — which read_journal tolerates — and loses only in-flight
// work. Final CSV/JSON reports use write-temp-then-rename (see
// write_text_atomic) so observers never see a partial report.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/spec.hpp"
#include "scenario/experiment.hpp"

namespace gttsch::campaign {

/// One completed job, keyed by (point_index, seed_index) — the stable
/// identity shared by every shard of the same campaign spec.
struct JournalRecord {
  std::size_t point_index = 0;
  std::size_t seed_index = 0;
  std::uint64_t seed = 0;
  /// campaign_fingerprint() of the writing campaign: lets merge/resume
  /// reject journals whose campaigns differ *outside* the swept axes
  /// (e.g. a different --set base config), which label/coords cannot
  /// see. 0 = written before fingerprinting (checks are skipped).
  std::uint64_t campaign_fp = 0;
  std::string label;  ///< grid-point label, for merge output and sanity checks
  std::vector<std::pair<std::string, std::string>> coords;
  ExperimentResult result;
};

/// Renders one record as a single JSON line (no trailing newline).
/// Doubles are emitted with %.17g and round-trip exactly through
/// parse_journal_line.
std::string render_journal_line(const JournalRecord& record);

/// Parses one journal line. Returns false (with `error` set when
/// non-null) on malformed input; never throws.
bool parse_journal_line(const std::string& line, JournalRecord* out,
                        std::string* error);

/// Appends records to a JSONL journal, one flushed line per append.
class JournalWriter {
 public:
  /// `append_mode` keeps existing records (resume) after trimming any
  /// crash-truncated partial last line; otherwise the file is truncated.
  /// An unopenable path — or a partial line that cannot be trimmed away —
  /// leaves ok() false.
  JournalWriter(const std::string& path, bool append_mode);

  bool append(const JournalRecord& record);
  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

/// Reads a journal written by JournalWriter. A truncated or malformed
/// *final* line (the crash case) is dropped silently; a malformed line
/// followed by further records is a hard error, as is an unreadable
/// file. Exact duplicate keys keep the first record; a duplicate key
/// with a different seed/label/coords — the signature of two campaigns'
/// journals concatenated into one file — is a hard error.
bool read_journal(const std::string& path, std::vector<JournalRecord>* out,
                  std::string* error);

/// Reconstructs per-point aggregates from journal records — typically the
/// concatenated union of per-shard journals. Records reduce keyed by
/// (point_index, seed_index) with exact duplicates keeping the first, so
/// the output is bit-identical to an unsharded run over the same jobs,
/// ordered by point_index. Returns false (with `error` set when non-null)
/// when the records disagree about a point's label/coords or a seed
/// index's seed value — the signature of journals from two different
/// campaigns, which would otherwise silently corrupt the statistics.
bool aggregate_records(const std::vector<JournalRecord>& records,
                       std::vector<PointAggregate>* out, std::string* error);

/// Writes `text` to `path` via a temporary file and atomic rename, so a
/// crash mid-write never leaves a partial file at `path`.
bool write_text_atomic(const std::string& path, const std::string& text);

}  // namespace gttsch::campaign
