// Append-only JSONL results journal: one line per completed (grid point,
// seed) job, carrying the full ExperimentResult at %.17g precision so a
// resumed or merged campaign re-aggregates bit-identically to an
// uninterrupted run.
//
// Crash safety: every append is a single write of one complete line
// followed by a flush, so a killed campaign leaves at most a truncated
// final line — which read_journal tolerates — and loses only in-flight
// work. Final CSV/JSON reports use write-temp-then-rename (see
// write_text_atomic) so observers never see a partial report.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/spec.hpp"
#include "scenario/experiment.hpp"

namespace gttsch::campaign {

/// One finished job, keyed by (point_index, seed_index) — the stable
/// identity shared by every shard of the same campaign spec.
///
/// Schema rev 2 (fault tolerance): `status` records how the job ended.
/// Old journals carry no status key and parse as `ok` with attempts == 1;
/// conversely an ok record with attempts == 1 renders byte-identically to
/// the rev-1 format, so healthy journals are byte-stable across the rev.
/// Quarantined records (status != ok) carry exit_code / term_signal /
/// attempts instead of metrics.
struct JournalRecord {
  std::size_t point_index = 0;
  std::size_t seed_index = 0;
  std::uint64_t seed = 0;
  /// campaign_fingerprint() of the writing campaign: lets merge/resume
  /// reject journals whose campaigns differ *outside* the swept axes
  /// (e.g. a different --set base config), which label/coords cannot
  /// see. 0 = written before fingerprinting (checks are skipped).
  std::uint64_t campaign_fp = 0;
  std::string label;  ///< grid-point label, for merge output and sanity checks
  std::vector<std::pair<std::string, std::string>> coords;
  JobStatus status = JobStatus::kOk;
  int attempts = 1;      ///< executions spent on the job (1 + retries used)
  int exit_code = 0;     ///< child exit code (status == failed, isolated)
  int term_signal = 0;   ///< fatal signal number (status == crashed)
  ExperimentResult result;  ///< valid only when status == ok
};

/// Renders one record as a single JSON line (no trailing newline).
/// Doubles are emitted with %.17g and round-trip exactly through
/// parse_journal_line.
std::string render_journal_line(const JournalRecord& record);

/// Parses one journal line. Returns false (with `error` set when
/// non-null) on malformed input; never throws.
bool parse_journal_line(const std::string& line, JournalRecord* out,
                        std::string* error);

/// Appends records to a JSONL journal, one flushed line per append.
class JournalWriter {
 public:
  /// `append_mode` keeps existing records (resume) after trimming any
  /// crash-truncated partial last line; otherwise the file is truncated.
  /// An unopenable path — or a partial line that cannot be trimmed away —
  /// leaves ok() false.
  JournalWriter(const std::string& path, bool append_mode);

  bool append(const JournalRecord& record);
  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

/// Reads a journal written by JournalWriter. A truncated or malformed
/// *final* line (the crash case) is dropped silently; a malformed line
/// followed by further records is a hard error, as is an unreadable
/// file. Exact duplicate keys keep the first record — except that an `ok`
/// record supersedes an earlier quarantined one for the same key (the
/// --retry-quarantined append path). A duplicate key with a different
/// seed/label/coords — the signature of two campaigns' journals
/// concatenated into one file — is a hard error.
bool read_journal(const std::string& path, std::vector<JournalRecord>* out,
                  std::string* error);

/// Reconstructs per-point aggregates from journal records — typically the
/// concatenated union of per-shard journals. Records reduce keyed by
/// (point_index, seed_index) with exact duplicates keeping the first
/// (an `ok` record supersedes a quarantined one for the same key), so
/// the output is bit-identical to an unsharded run over the same jobs,
/// ordered by point_index. Quarantined records flow into the aggregate's
/// runs_failed / failure-kind counters instead of the statistics; a point
/// whose records are all quarantined yields runs == 0, runs_failed > 0 —
/// reported as status=failed, never as silently empty stats. Returns
/// false (with `error` set when non-null) when the records disagree about
/// a point's label/coords or a seed index's seed value — the signature of
/// journals from two different campaigns, which would otherwise silently
/// corrupt the statistics.
bool aggregate_records(const std::vector<JournalRecord>& records,
                       std::vector<PointAggregate>* out, std::string* error);

/// Writes `text` to `path` via a temporary file and atomic rename, so a
/// crash mid-write never leaves a partial file at `path`.
bool write_text_atomic(const std::string& path, const std::string& text);

}  // namespace gttsch::campaign
