#include "campaign/report.hpp"

#include <cstdio>

#include "campaign/journal.hpp"
#include "util/csv.hpp"

namespace gttsch::campaign {
namespace {

struct MetricColumn {
  const char* name;
  SampleStats PointAggregate::*stats;
};

constexpr MetricColumn kMetrics[] = {
    {"pdr_percent", &PointAggregate::pdr_percent},
    {"avg_delay_ms", &PointAggregate::avg_delay_ms},
    {"p95_delay_ms", &PointAggregate::p95_delay_ms},
    {"loss_per_minute", &PointAggregate::loss_per_minute},
    {"duty_cycle_percent", &PointAggregate::duty_cycle_percent},
    {"queue_loss_per_node", &PointAggregate::queue_loss_per_node},
    {"throughput_per_minute", &PointAggregate::throughput_per_minute},
    {"mean_hops", &PointAggregate::mean_hops},
    {"pre_pdr_percent", &PointAggregate::pre_pdr_percent},
    {"churn_pdr_percent", &PointAggregate::churn_pdr_percent},
    {"post_pdr_percent", &PointAggregate::post_pdr_percent},
    {"probe_pdr_percent", &PointAggregate::probe_pdr_percent},
    {"probe_avg_latency_ms", &PointAggregate::probe_avg_latency_ms},
    {"recovery_rejoin_s", &PointAggregate::recovery_rejoin_s},
    {"recovery_first_delivery_s", &PointAggregate::recovery_first_delivery_s},
    {"recovery_ttr_s", &PointAggregate::recovery_ttr_s},
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> csv_header(const std::vector<PointAggregate>& aggregates) {
  std::vector<std::string> header{"label"};
  if (!aggregates.empty()) {
    for (const auto& [field, value] : aggregates.front().coords) header.push_back(field);
  }
  header.push_back("runs");
  header.push_back("fully_formed_runs");
  header.push_back("status");
  header.push_back("failed_jobs");
  header.push_back("failure_kinds");
  for (const MetricColumn& m : kMetrics) {
    header.push_back(std::string(m.name) + "_mean");
    header.push_back(std::string(m.name) + "_stddev");
    header.push_back(std::string(m.name) + "_ci95");
  }
  for (const char* name :
       {"generated", "delivered", "queue_drops", "mac_drops", "no_route_drops",
        "medium_transmissions", "medium_collision_losses", "medium_prr_losses",
        "pre_generated", "churn_generated", "post_generated", "pre_delivered",
        "churn_delivered", "post_delivered", "probes_sent", "probes_delivered",
        "node_failures", "node_revivals", "node_rejoins", "orphan_intervals",
        "recovery_ttr_censored"}) {
    header.push_back(name);
  }
  return header;
}

std::vector<std::string> csv_row(const PointAggregate& a) {
  std::vector<std::string> row{a.label};
  for (const auto& [field, value] : a.coords) row.push_back(value);
  row.push_back(std::to_string(a.runs));
  row.push_back(std::to_string(a.fully_formed_runs));
  row.push_back(point_status(a));
  row.push_back(std::to_string(a.runs_failed));
  row.push_back(failure_kinds_label(a));
  for (const MetricColumn& m : kMetrics) {
    const SampleStats& s = a.*m.stats;
    row.push_back(fmt(s.mean));
    row.push_back(fmt(s.stddev));
    // A 95% CI needs at least two samples; a single-seed point gets a
    // blank cell, not a fake 0-width interval.
    row.push_back(s.n > 1 ? fmt(s.ci95_half) : std::string());
  }
  row.push_back(fmt(a.mean.generated));
  row.push_back(fmt(a.mean.delivered));
  row.push_back(fmt(a.mean.queue_drops));
  row.push_back(fmt(a.mean.mac_drops));
  row.push_back(fmt(a.mean.no_route_drops));
  row.push_back(fmt(a.medium_sum.transmissions));
  row.push_back(fmt(a.medium_sum.collision_losses));
  row.push_back(fmt(a.medium_sum.prr_losses));
  row.push_back(fmt(a.mean.pre_generated));
  row.push_back(fmt(a.mean.churn_generated));
  row.push_back(fmt(a.mean.post_generated));
  row.push_back(fmt(a.mean.pre_delivered));
  row.push_back(fmt(a.mean.churn_delivered));
  row.push_back(fmt(a.mean.post_delivered));
  row.push_back(fmt(a.mean.probes_sent));
  row.push_back(fmt(a.mean.probes_delivered));
  row.push_back(fmt(a.mean.node_failures));
  row.push_back(fmt(a.mean.node_revivals));
  row.push_back(fmt(a.mean.node_rejoins));
  row.push_back(fmt(a.mean.orphan_intervals));
  row.push_back(fmt(a.mean.recovery_ttr_censored));
  return row;
}

std::string render_csv(const std::vector<PointAggregate>& aggregates) {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvWriter::escape(cells[i]);
    }
    out += '\n';
  };
  append_row(csv_header(aggregates));
  for (const PointAggregate& a : aggregates) append_row(csv_row(a));
  return out;
}

bool write_csv(const std::string& path,
               const std::vector<PointAggregate>& aggregates) {
  return write_text_atomic(path, render_csv(aggregates));
}

std::string render_json(const std::vector<PointAggregate>& aggregates) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const PointAggregate& a = aggregates[i];
    out += "  {\n";
    out += "    \"label\": \"" + json_escape(a.label) + "\",\n";
    out += "    \"coords\": {";
    for (std::size_t c = 0; c < a.coords.size(); ++c) {
      if (c > 0) out += ", ";
      out += '"';
      out += json_escape(a.coords[c].first);
      out += "\": \"";
      out += json_escape(a.coords[c].second);
      out += '"';
    }
    out += "},\n";
    out += "    \"runs\": " + std::to_string(a.runs) + ",\n";
    out += "    \"fully_formed_runs\": " + std::to_string(a.fully_formed_runs) + ",\n";
    out += "    \"status\": \"" + std::string(point_status(a)) + "\",\n";
    out += "    \"failed_jobs\": " + std::to_string(a.runs_failed) + ",\n";
    out += "    \"failure_kinds\": {\"crashed\": " + std::to_string(a.failed_crashed) +
           ", \"timeout\": " + std::to_string(a.failed_timeout) +
           ", \"failed\": " + std::to_string(a.failed_other) + "},\n";
    out += "    \"metrics\": {\n";
    for (std::size_t m = 0; m < std::size(kMetrics); ++m) {
      const SampleStats& s = a.*kMetrics[m].stats;
      out += "      \"";
      out += kMetrics[m].name;
      out += "\": {\"mean\": " + fmt(s.mean) + ", \"stddev\": " + fmt(s.stddev) +
             ", \"ci95\": " + (s.n > 1 ? fmt(s.ci95_half) : std::string("null")) +
             ", \"min\": " + fmt(s.min) +
             ", \"max\": " + fmt(s.max) + ", \"n\": " + std::to_string(s.n) + "}";
      out += (m + 1 < std::size(kMetrics)) ? ",\n" : "\n";
    }
    out += "    },\n";
    out += "    \"counters\": {\"generated\": " + fmt(a.mean.generated) +
           ", \"delivered\": " + fmt(a.mean.delivered) +
           ", \"queue_drops\": " + fmt(a.mean.queue_drops) +
           ", \"mac_drops\": " + fmt(a.mean.mac_drops) +
           ", \"no_route_drops\": " + fmt(a.mean.no_route_drops) +
           ", \"pre_generated\": " + fmt(a.mean.pre_generated) +
           ", \"churn_generated\": " + fmt(a.mean.churn_generated) +
           ", \"post_generated\": " + fmt(a.mean.post_generated) +
           ", \"pre_delivered\": " + fmt(a.mean.pre_delivered) +
           ", \"churn_delivered\": " + fmt(a.mean.churn_delivered) +
           ", \"post_delivered\": " + fmt(a.mean.post_delivered) +
           ", \"probes_sent\": " + fmt(a.mean.probes_sent) +
           ", \"probes_delivered\": " + fmt(a.mean.probes_delivered) +
           ", \"node_failures\": " + fmt(a.mean.node_failures) +
           ", \"node_revivals\": " + fmt(a.mean.node_revivals) +
           ", \"node_rejoins\": " + fmt(a.mean.node_rejoins) +
           ", \"orphan_intervals\": " + fmt(a.mean.orphan_intervals) +
           ", \"recovery_ttr_censored\": " + fmt(a.mean.recovery_ttr_censored) + "},\n";
    out += "    \"medium\": {\"transmissions\": " + fmt(a.medium_sum.transmissions) +
           ", \"deliveries\": " + fmt(a.medium_sum.deliveries) +
           ", \"collision_losses\": " + fmt(a.medium_sum.collision_losses) +
           ", \"prr_losses\": " + fmt(a.medium_sum.prr_losses) + "}\n";
    out += (i + 1 < aggregates.size()) ? "  },\n" : "  }\n";
  }
  out += "]\n";
  return out;
}

bool write_json(const std::string& path,
                const std::vector<PointAggregate>& aggregates) {
  return write_text_atomic(path, render_json(aggregates));
}

}  // namespace gttsch::campaign
