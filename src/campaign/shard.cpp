#include "campaign/shard.hpp"

namespace gttsch::campaign {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_size(const std::string& text, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_bounded_u64(text, 1'000'000, &v)) return false;  // 1M hosts is enough
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

bool parse_shard(const std::string& text, ShardSpec* out, std::string* error) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    return fail(error, "shard '" + text + "' is not of the form i/N");
  }
  ShardSpec spec;
  if (!parse_size(text.substr(0, slash), &spec.index) ||
      !parse_size(text.substr(slash + 1), &spec.count)) {
    return fail(error, "shard '" + text + "' is not of the form i/N");
  }
  if (spec.count == 0) {
    return fail(error, "shard '" + text + "': shard count must be at least 1");
  }
  if (spec.index >= spec.count) {
    return fail(error, "shard '" + text + "': index " + std::to_string(spec.index) +
                           " out of range for " + std::to_string(spec.count) +
                           " shards");
  }
  *out = spec;
  return true;
}

std::vector<Job> shard_jobs(const std::vector<Job>& jobs, const ShardSpec& shard) {
  if (shard.is_whole()) return jobs;
  std::vector<Job> mine;
  mine.reserve(jobs.size() / shard.count + 1);
  for (const Job& job : jobs) {
    if (job.index % shard.count == shard.index) mine.push_back(job);
  }
  return mine;
}

std::vector<GridPoint> shard_points(const std::vector<GridPoint>& points,
                                    const ShardSpec& shard) {
  if (shard.is_whole()) return points;
  std::vector<GridPoint> mine;
  mine.reserve(points.size() / shard.count + 1);
  for (const GridPoint& point : points) {
    if (point.index % shard.count == shard.index) mine.push_back(point);
  }
  return mine;
}

}  // namespace gttsch::campaign
