// Campaign artifact export: one CSV row per grid point (via util/csv) and
// a JSON document carrying the full spread statistics, for external
// plotting and regression tracking.
#pragma once

#include <string>
#include <vector>

#include "campaign/aggregate.hpp"

namespace gttsch::campaign {

/// Column layout: label, one column per axis coordinate, runs,
/// fully_formed_runs, status (ok/failed/empty), failed_jobs,
/// failure_kinds ("kind:count" pairs, ';'-joined, "" when clean), then
/// mean/stddev/ci95 per panel metric, then the summed counters.
/// Coordinate columns come from the first aggregate.
std::vector<std::string> csv_header(const std::vector<PointAggregate>& aggregates);
std::vector<std::string> csv_row(const PointAggregate& aggregate);

/// Renders the aggregates as CSV text (header + one row per point).
std::string render_csv(const std::vector<PointAggregate>& aggregates);

/// Writes the aggregates as CSV via write-temp-then-rename, so a crash
/// mid-write never leaves a truncated report; returns false on I/O
/// failure.
bool write_csv(const std::string& path,
               const std::vector<PointAggregate>& aggregates);

/// Renders the aggregates as a JSON array (stable field order, no
/// external dependency) — the machine-readable campaign artifact.
std::string render_json(const std::vector<PointAggregate>& aggregates);

/// Writes render_json() to `path`; returns false on I/O failure.
bool write_json(const std::string& path,
                const std::vector<PointAggregate>& aggregates);

}  // namespace gttsch::campaign
