// Deterministic campaign partitioning: `--shard i/N` splits an expanded
// job (or grid-point) list across N independent gt_campaign processes or
// hosts. Shards are disjoint, cover every job, and depend only on
// (index, count) — never on timing — so the union of per-shard journals
// merges into an aggregate bit-identical to an unsharded run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace gttsch::campaign {

/// One shard out of `count`: this process runs jobs with
/// `job.index % count == index`.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool is_whole() const { return count <= 1; }
};

/// Parses "i/N" (e.g. "0/4"). Requires N >= 1 and i < N.
bool parse_shard(const std::string& text, ShardSpec* out, std::string* error);

/// Round-robin job partition: keeps every shard's share of each grid
/// point balanced (contiguous blocks would give early shards whole
/// points and leave late shards idle on small grids). Job `index`,
/// `point_index` and `seed_index` are preserved — they are the stable
/// identity used by journals and the shard merge.
std::vector<Job> shard_jobs(const std::vector<Job>& jobs, const ShardSpec& shard);

/// Point-level partition for adaptive campaigns, where per-point seed
/// counts are dynamic and a grid point must live entirely in one shard.
std::vector<GridPoint> shard_points(const std::vector<GridPoint>& points,
                                    const ShardSpec& shard);

}  // namespace gttsch::campaign
