// Order-independent aggregation of per-job ExperimentResults into
// seed-averaged statistics (mean / stddev / 95% CI per panel metric).
//
// Parallel workers finish in nondeterministic order; the accumulator keys
// every result by its seed index and reduces in seed order at finalize(),
// so the aggregate is bit-identical to a serial run of the same seed list.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scenario/experiment.hpp"

namespace gttsch::campaign {

/// Terminal state of one (grid point, seed) job. Everything except kOk is
/// a *quarantined* job: it exhausted its retries and contributes no
/// metrics, only failure accounting.
enum class JobStatus : std::uint8_t {
  kOk,       ///< result is valid
  kCrashed,  ///< isolated child died on a signal (term_signal says which)
  kTimeout,  ///< isolated child exceeded --job-timeout and was SIGKILLed
  kFailed,   ///< nonzero exit, protocol breakage, or in-process watchdog trip
};

/// Stable wire name ("ok" / "crashed" / "timeout" / "failed") — the journal
/// status grammar.
const char* job_status_name(JobStatus status);

/// Inverse of job_status_name; returns false on an unknown name.
bool parse_job_status(const std::string& name, JobStatus* out);

/// Spread of one scalar metric across seeds.
struct SampleStats {
  std::uint64_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (n-1)
  double ci95_half = 0.0;  ///< Student-t 95% half-width of the mean
  double min = 0.0;
  double max = 0.0;
};

/// Summarizes `samples` in the given (deterministic) order.
SampleStats summarize(const std::vector<double>& samples);

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
double t_critical_95(std::uint64_t df);

/// Seed-aggregated metrics for one grid point: the six panel metrics with
/// across-seed spread, plus the packed means the table printers consume.
struct PointAggregate {
  std::string label;
  std::vector<std::pair<std::string, std::string>> coords;

  SampleStats pdr_percent;
  SampleStats avg_delay_ms;
  SampleStats p95_delay_ms;
  SampleStats loss_per_minute;
  SampleStats duty_cycle_percent;
  SampleStats queue_loss_per_node;
  SampleStats throughput_per_minute;
  SampleStats mean_hops;
  // Churn-phase and probe telemetry (all-zero when the point's runs had
  // no failure trace / no probes).
  SampleStats pre_pdr_percent;
  SampleStats churn_pdr_percent;
  SampleStats post_pdr_percent;
  SampleStats probe_pdr_percent;
  SampleStats probe_avg_latency_ms;
  // Recovery metrics (all-zero without fail/revive trace events).
  SampleStats recovery_rejoin_s;
  SampleStats recovery_first_delivery_s;
  SampleStats recovery_ttr_s;

  RunMetrics mean;        ///< means (and summed counters), as run_averaged
  MediumStats medium_sum; ///< summed medium counters over seeds
  int runs = 0;
  int fully_formed_runs = 0;
  // Quarantined jobs (crash / timeout / other failure after retries).
  // They contribute nothing to the statistics above — aggregation
  // degrades gracefully instead of poisoning the means.
  int runs_failed = 0;
  int failed_crashed = 0;
  int failed_timeout = 0;
  int failed_other = 0;
};

/// Report status of a point: "ok" when it has at least one successful run,
/// "failed" when every attempted run was quarantined, "empty" when nothing
/// ran at all (e.g. the point belongs to another shard).
const char* point_status(const PointAggregate& aggregate);

/// Compact per-point failure breakdown for reports, e.g.
/// "crashed:2;timeout:1" — empty when runs_failed == 0.
std::string failure_kinds_label(const PointAggregate& aggregate);

/// Maps a panel-metric name ("pdr_percent", "avg_delay_ms", ...) to its
/// SampleStats member, or nullptr when unknown — used by adaptive
/// stopping (--metric) and anything else that selects metrics by name.
SampleStats PointAggregate::*metric_by_name(const std::string& name);

/// The selectable metric names, in report order.
const std::vector<std::string>& metric_names();

/// Accumulates per-seed results for one grid point in any arrival order.
class PointAccumulator {
 public:
  /// `seed_index` positions the result in the deterministic reduction
  /// order; adding the same index twice is a programming error. A success
  /// supersedes any earlier add_failure for the same index (the
  /// --retry-quarantined path).
  void add(std::size_t seed_index, const ExperimentResult& result);

  /// Records a quarantined job for the point. Ignored when the same seed
  /// index already holds (or later gains) a successful result; duplicate
  /// failures keep the first status.
  void add_failure(std::size_t seed_index, JobStatus status);

  std::size_t size() const { return by_seed_.size(); }
  std::size_t failed_size() const { return failed_.size(); }

  PointAggregate finalize() const;

 private:
  std::map<std::size_t, ExperimentResult> by_seed_;
  std::map<std::size_t, JobStatus> failed_;
};

}  // namespace gttsch::campaign
