#include "campaign/aggregate.hpp"

#include <cmath>

#include "util/check.hpp"

namespace gttsch::campaign {

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kCrashed: return "crashed";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kFailed: return "failed";
  }
  GTTSCH_CHECK(false);
  return "?";
}

bool parse_job_status(const std::string& name, JobStatus* out) {
  for (const JobStatus s : {JobStatus::kOk, JobStatus::kCrashed,
                            JobStatus::kTimeout, JobStatus::kFailed}) {
    if (name == job_status_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

const char* point_status(const PointAggregate& a) {
  if (a.runs > 0) return "ok";
  return a.runs_failed > 0 ? "failed" : "empty";
}

std::string failure_kinds_label(const PointAggregate& a) {
  std::string out;
  const auto append = [&out](const char* kind, int count) {
    if (count == 0) return;
    if (!out.empty()) out += ';';
    out += kind;
    out += ':';
    out += std::to_string(count);
  };
  append("crashed", a.failed_crashed);
  append("timeout", a.failed_timeout);
  append("failed", a.failed_other);
  return out;
}

double t_critical_95(std::uint64_t df) {
  // Two-sided 95% quantiles of the Student-t distribution; beyond df=30
  // the normal value is accurate to well under the precision we report.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

SampleStats summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.min = samples.front();
  s.max = samples.front();
  double sum = 0.0;
  for (const double x : samples) {
    sum += x;
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  const double n = static_cast<double>(s.n);
  s.mean = sum / n;
  // n == 1 keeps stddev at 0 and ci95_half at 0 (reported as blank/null):
  // sq / (n - 1.0) would be 0/0 = NaN and leak into every report column.
  if (s.n > 1) {
    double sq = 0.0;
    for (const double x : samples) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / (n - 1.0));
    s.ci95_half = t_critical_95(s.n - 1) * s.stddev / std::sqrt(n);
  }
  return s;
}

namespace {

struct NamedMetric {
  const char* name;
  SampleStats PointAggregate::*stats;
};

constexpr NamedMetric kNamedMetrics[] = {
    {"pdr_percent", &PointAggregate::pdr_percent},
    {"avg_delay_ms", &PointAggregate::avg_delay_ms},
    {"p95_delay_ms", &PointAggregate::p95_delay_ms},
    {"loss_per_minute", &PointAggregate::loss_per_minute},
    {"duty_cycle_percent", &PointAggregate::duty_cycle_percent},
    {"queue_loss_per_node", &PointAggregate::queue_loss_per_node},
    {"throughput_per_minute", &PointAggregate::throughput_per_minute},
    {"mean_hops", &PointAggregate::mean_hops},
    {"pre_pdr_percent", &PointAggregate::pre_pdr_percent},
    {"churn_pdr_percent", &PointAggregate::churn_pdr_percent},
    {"post_pdr_percent", &PointAggregate::post_pdr_percent},
    {"probe_pdr_percent", &PointAggregate::probe_pdr_percent},
    {"probe_avg_latency_ms", &PointAggregate::probe_avg_latency_ms},
    {"recovery_rejoin_s", &PointAggregate::recovery_rejoin_s},
    {"recovery_first_delivery_s", &PointAggregate::recovery_first_delivery_s},
    {"recovery_ttr_s", &PointAggregate::recovery_ttr_s},
};

}  // namespace

SampleStats PointAggregate::*metric_by_name(const std::string& name) {
  for (const NamedMetric& m : kNamedMetrics) {
    if (name == m.name) return m.stats;
  }
  return nullptr;
}

const std::vector<std::string>& metric_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const NamedMetric& m : kNamedMetrics) v.push_back(m.name);
    return v;
  }();
  return names;
}

void PointAccumulator::add(std::size_t seed_index, const ExperimentResult& result) {
  const bool inserted = by_seed_.emplace(seed_index, result).second;
  GTTSCH_CHECK(inserted);
  // A success supersedes a quarantined record for the same seed — the
  // --retry-quarantined path appends the retried result to the same
  // journal, and the newer ok record must win.
  failed_.erase(seed_index);
}

void PointAccumulator::add_failure(std::size_t seed_index, JobStatus status) {
  GTTSCH_CHECK(status != JobStatus::kOk);
  if (by_seed_.count(seed_index) > 0) return;  // ok already recorded: it wins
  failed_.emplace(seed_index, status);         // duplicate failures keep-first
}

PointAggregate PointAccumulator::finalize() const {
  PointAggregate out;
  for (const auto& [seed_index, status] : failed_) {
    ++out.runs_failed;
    switch (status) {
      case JobStatus::kCrashed: ++out.failed_crashed; break;
      case JobStatus::kTimeout: ++out.failed_timeout; break;
      default: ++out.failed_other; break;
    }
  }
  if (by_seed_.empty()) return out;

  // Collect per-metric sample vectors in seed order (std::map iterates in
  // key order, so arrival order is irrelevant).
  struct Series {
    SampleStats PointAggregate::*stats;
    double RunMetrics::*metric;
  };
  static constexpr Series kSeries[] = {
      {&PointAggregate::pdr_percent, &RunMetrics::pdr_percent},
      {&PointAggregate::avg_delay_ms, &RunMetrics::avg_delay_ms},
      {&PointAggregate::p95_delay_ms, &RunMetrics::p95_delay_ms},
      {&PointAggregate::loss_per_minute, &RunMetrics::loss_per_minute},
      {&PointAggregate::duty_cycle_percent, &RunMetrics::duty_cycle_percent},
      {&PointAggregate::queue_loss_per_node, &RunMetrics::queue_loss_per_node},
      {&PointAggregate::throughput_per_minute, &RunMetrics::throughput_per_minute},
      {&PointAggregate::mean_hops, &RunMetrics::mean_hops},
      {&PointAggregate::pre_pdr_percent, &RunMetrics::pre_pdr_percent},
      {&PointAggregate::churn_pdr_percent, &RunMetrics::churn_pdr_percent},
      {&PointAggregate::post_pdr_percent, &RunMetrics::post_pdr_percent},
      {&PointAggregate::probe_pdr_percent, &RunMetrics::probe_pdr_percent},
      {&PointAggregate::probe_avg_latency_ms, &RunMetrics::probe_avg_latency_ms},
      {&PointAggregate::recovery_rejoin_s, &RunMetrics::recovery_rejoin_s},
      {&PointAggregate::recovery_first_delivery_s,
       &RunMetrics::recovery_first_delivery_s},
      {&PointAggregate::recovery_ttr_s, &RunMetrics::recovery_ttr_s},
  };
  std::vector<double> samples;
  samples.reserve(by_seed_.size());
  for (const Series& series : kSeries) {
    samples.clear();
    for (const auto& [seed_index, result] : by_seed_) {
      samples.push_back(result.metrics.*series.metric);
    }
    out.*series.stats = summarize(samples);
  }

  for (const auto& [seed_index, result] : by_seed_) {
    const RunMetrics& m = result.metrics;
    out.mean.generated += m.generated;
    out.mean.delivered += m.delivered;
    out.mean.queue_drops += m.queue_drops;
    out.mean.mac_drops += m.mac_drops;
    out.mean.no_route_drops += m.no_route_drops;
    out.mean.nodes_joined += m.nodes_joined;
    out.mean.node_count = m.node_count;
    out.mean.measure_minutes += m.measure_minutes;
    out.mean.churn_phases |= m.churn_phases;
    out.mean.pre_generated += m.pre_generated;
    out.mean.churn_generated += m.churn_generated;
    out.mean.post_generated += m.post_generated;
    out.mean.pre_delivered += m.pre_delivered;
    out.mean.churn_delivered += m.churn_delivered;
    out.mean.post_delivered += m.post_delivered;
    out.mean.probes_sent += m.probes_sent;
    out.mean.probes_delivered += m.probes_delivered;
    out.mean.node_failures += m.node_failures;
    out.mean.node_revivals += m.node_revivals;
    out.mean.node_rejoins += m.node_rejoins;
    out.mean.orphan_intervals += m.orphan_intervals;
    out.mean.recovery_ttr_censored += m.recovery_ttr_censored;
    out.mean.pre_avg_delay_ms += m.pre_avg_delay_ms;
    out.mean.churn_avg_delay_ms += m.churn_avg_delay_ms;
    out.mean.post_avg_delay_ms += m.post_avg_delay_ms;
    out.medium_sum.transmissions += result.medium.transmissions;
    out.medium_sum.deliveries += result.medium.deliveries;
    out.medium_sum.collision_losses += result.medium.collision_losses;
    out.medium_sum.prr_losses += result.medium.prr_losses;
    if (result.fully_formed) ++out.fully_formed_runs;
    ++out.runs;
  }
  out.mean.pdr_percent = out.pdr_percent.mean;
  out.mean.avg_delay_ms = out.avg_delay_ms.mean;
  out.mean.p95_delay_ms = out.p95_delay_ms.mean;
  out.mean.loss_per_minute = out.loss_per_minute.mean;
  out.mean.duty_cycle_percent = out.duty_cycle_percent.mean;
  out.mean.queue_loss_per_node = out.queue_loss_per_node.mean;
  out.mean.throughput_per_minute = out.throughput_per_minute.mean;
  out.mean.mean_hops = out.mean_hops.mean;
  out.mean.measure_minutes /= static_cast<double>(out.runs);
  out.mean.pre_avg_delay_ms /= static_cast<double>(out.runs);
  out.mean.churn_avg_delay_ms /= static_cast<double>(out.runs);
  out.mean.post_avg_delay_ms /= static_cast<double>(out.runs);
  out.mean.pre_pdr_percent = out.pre_pdr_percent.mean;
  out.mean.churn_pdr_percent = out.churn_pdr_percent.mean;
  out.mean.post_pdr_percent = out.post_pdr_percent.mean;
  out.mean.probe_pdr_percent = out.probe_pdr_percent.mean;
  out.mean.probe_avg_latency_ms = out.probe_avg_latency_ms.mean;
  out.mean.recovery_rejoin_s = out.recovery_rejoin_s.mean;
  out.mean.recovery_first_delivery_s = out.recovery_first_delivery_s.mean;
  out.mean.recovery_ttr_s = out.recovery_ttr_s.mean;
  return out;
}

}  // namespace gttsch::campaign
