// Parallel campaign execution: a std::thread worker pool pulls jobs off a
// shared index counter, each job running its own private Simulator via
// run_scenario — runs are embarrassingly parallel and bit-identical to
// serial execution for the same seed, whatever the completion order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/spec.hpp"

namespace gttsch::campaign {

/// Snapshot handed to the progress callback after each job completes.
struct Progress {
  std::size_t completed = 0;  ///< jobs finished so far (including this one)
  std::size_t total = 0;
  const Job* job = nullptr;  ///< the job that just finished
};

struct RunnerOptions {
  /// Worker threads; 0 defers to the GTTSCH_JOBS environment variable,
  /// then std::thread::hardware_concurrency().
  int jobs = 0;
  /// Invoked after every job, serialized (never concurrently).
  std::function<void(const Progress&)> on_progress;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  struct Result {
    /// Indexed like the input jobs, regardless of completion order.
    std::vector<ExperimentResult> results;
    /// completed[i] is false only when the run was cancelled before job i.
    std::vector<std::uint8_t> completed;
    bool cancelled = false;
  };

  /// Executes every job; blocks until done (or cancelled). Safe to call
  /// repeatedly; each call resets the cancellation flag.
  Result run(const std::vector<Job>& jobs);

  /// Thread-safe: workers stop claiming new jobs; in-flight jobs finish.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  RunnerOptions options_;
  std::atomic<bool> cancel_{false};
};

/// A campaign end-to-end: expand the spec, run all jobs on the pool, merge
/// per-seed results into one PointAggregate per grid point.
struct CampaignResult {
  std::vector<GridPoint> points;
  std::vector<PointAggregate> aggregates;  ///< parallel to `points`
  bool cancelled = false;
};

bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  CampaignResult* out, std::string* error);

/// Drop-in parallel replacement for run_averaged: one scenario, all seeds
/// on the pool, spread statistics included.
PointAggregate run_point(const ScenarioConfig& config,
                         const std::vector<std::uint64_t>& seeds,
                         const RunnerOptions& options = {});

}  // namespace gttsch::campaign
