// Parallel campaign execution: a std::thread worker pool pulls jobs off a
// shared index counter, each job running its own private Simulator via
// run_scenario — runs are embarrassingly parallel and bit-identical to
// serial execution for the same seed, whatever the completion order.
//
// On top of the pool, run_points_campaign adds the three pieces that make
// million-run campaigns practical (see ROADMAP):
//   * sharding   — run only `--shard i/N` of the jobs; shards merge later,
//   * journaling — append each finished job to a crash-safe JSONL journal
//                  and `resume` by skipping jobs already recorded,
//   * adaptive seeding — per-point sequential seed batches that stop once
//                  the 95% CI half-width of a chosen metric is tight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/shard.hpp"
#include "campaign/spec.hpp"
#include "util/flags.hpp"

namespace gttsch::campaign {

/// How one job ended, after all retries: an ok result, or a quarantined
/// failure with enough forensics for the journal (exit code / signal /
/// attempt count).
struct JobOutcome {
  JobStatus status = JobStatus::kOk;
  int exit_code = 0;    ///< child exit code (status == kFailed, isolated)
  int term_signal = 0;  ///< fatal signal number (status == kCrashed)
  int attempts = 1;     ///< executions spent (1 + retries used)
  std::string detail;   ///< human-readable failure note for the summary
  ExperimentResult result;  ///< valid only when status == kOk
};

/// Snapshot handed to the progress callback after each job completes.
/// Retried jobs report once, with their final outcome.
struct Progress {
  std::size_t completed = 0;  ///< jobs finished so far (including this one)
  std::size_t total = 0;
  const Job* job = nullptr;     ///< the job that just finished
  const ExperimentResult* result = nullptr;  ///< outcome->result (legacy alias)
  const JobOutcome* outcome = nullptr;       ///< full outcome incl. failures
};

struct RunnerOptions {
  /// Worker threads; 0 defers to the GTTSCH_JOBS environment variable,
  /// then std::thread::hardware_concurrency().
  int jobs = 0;
  /// Invoked after every job, serialized (never concurrently).
  std::function<void(const Progress&)> on_progress;
  /// How one job is executed; defaults to run_scenario. Tests substitute
  /// a synthetic function to count invocations and shape metric noise.
  std::function<ExperimentResult(const ScenarioConfig&)> run_fn;
  /// Job-aware variant, taking precedence over run_fn: receives the whole
  /// Job so per-job artifacts can be keyed by point/seed index (e.g.
  /// gt_campaign --telemetry-dir writes one JSONL per job).
  std::function<ExperimentResult(const Job&)> run_job_fn;
  /// Outcome-aware variant, taking precedence over both: the only one
  /// that can report a *failed* job (crash/timeout in an isolated child,
  /// watchdog trip in-process). Failures are retried per `retries` below;
  /// the other run functions are assumed infallible (they abort on error).
  std::function<JobOutcome(const Job&)> execute_fn;
  /// Re-executions granted to a failing job before it is quarantined.
  int retries = 0;
  /// First retry backoff; doubles per subsequent retry (capped at 10 s).
  int retry_backoff_ms = 200;
  /// Optional external cancellation (e.g. a SIGINT flag): polled between
  /// jobs exactly like Runner::cancel(). Must outlive run().
  const std::atomic<bool>* cancel_flag = nullptr;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  struct Result {
    /// Positional: outcomes[i] belongs to jobs[i] of the run() argument,
    /// regardless of completion order. A non-ok outcome is a quarantined
    /// job — already retried per RunnerOptions::retries.
    std::vector<JobOutcome> outcomes;
    /// completed[i] is false only when the run was cancelled before job i.
    std::vector<std::uint8_t> completed;
    bool cancelled = false;
  };

  /// Executes every job; blocks until done (or cancelled). Safe to call
  /// repeatedly; each call resets the cancellation flag.
  Result run(const std::vector<Job>& jobs);

  /// Thread-safe: workers stop claiming new jobs; in-flight jobs finish.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  RunnerOptions options_;
  std::atomic<bool> cancel_{false};
};

/// Statistical stopping rule for adaptive seeding: grow each grid point's
/// seed count in batches until the 95% CI half-width of `metric` drops to
/// `ci_rel` * |mean| (relative half-width), or `max_seeds` is reached.
struct AdaptiveOptions {
  double ci_rel = 0.0;        ///< relative CI target; <= 0 disables adaptivity
  std::size_t min_seeds = 3;  ///< never stop before this many seeds
  std::size_t max_seeds = 0;  ///< hard cap; 0 = the provided seed-list length
  std::size_t batch = 2;      ///< seeds added per wave after min_seeds
  std::string metric = "pdr_percent";  ///< see metric_names()

  bool enabled() const { return ci_rel > 0.0; }
};

/// Fault-tolerant execution (the --isolate / --job-timeout / --retries
/// surface). Failures never stop the campaign: after `retries`
/// re-executions a failing job is *quarantined* — journaled with its
/// status, counted in the aggregates' runs_failed, and skipped on resume
/// unless retry_quarantined asks for another attempt.
struct FaultOptions {
  /// Run each job in a forked child re-entering `exec_path run-job`, so a
  /// crash/OOM/livelock costs one job, not the campaign.
  bool isolate = false;
  /// Path of the binary implementing the run-job protocol (gt_campaign
  /// sets its own path); empty + isolate is a spec error.
  std::string exec_path;
  /// Wall-clock budget per job in seconds; <= 0 = unlimited. Isolated
  /// jobs are SIGKILLed on expiry (kTimeout); in-process jobs arm the
  /// simulator watchdog and abort as kFailed.
  double job_timeout_s = 0.0;
  /// Re-executions granted to a failing job before quarantine.
  int retries = 0;
  /// First retry backoff; doubles per retry. Exposed for fast tests.
  int retry_backoff_ms = 200;
  /// With resume: re-run quarantined journal records instead of skipping
  /// them (ok records are always skipped).
  bool retry_quarantined = false;

  bool active() const { return isolate || job_timeout_s > 0.0; }
};

/// Everything beyond raw pool execution: sharding, journal/resume,
/// adaptive seeding, fault tolerance.
struct CampaignOptions {
  RunnerOptions runner;
  ShardSpec shard;           ///< jobs (fixed mode) / points (adaptive mode)
  std::string journal_path;  ///< append per-job JSONL records ("" = off)
  /// Read `journal_path` first and skip every job it records; a missing
  /// journal file is an empty journal (fresh start), so crash-loop
  /// scripts can pass --resume unconditionally.
  bool resume = false;
  AdaptiveOptions adaptive;
  FaultOptions fault;
};

/// Why a campaign call returned false — callers map kSpec to a usage
/// exit (2) and kIo to a runtime exit (1).
enum class CampaignErrorKind {
  kSpec,  ///< bad spec/options or a journal that mismatches the campaign
  kIo,    ///< journal unreadable/unwritable, write failure (disk full, ...)
};

/// A campaign end-to-end: expand the spec, run all jobs on the pool, merge
/// per-seed results into one PointAggregate per grid point.
struct CampaignResult {
  std::vector<GridPoint> points;
  std::vector<PointAggregate> aggregates;  ///< parallel to `points`
  bool cancelled = false;
  std::size_t jobs_run = 0;      ///< executed by this invocation
  std::size_t jobs_skipped = 0;  ///< satisfied from the resume journal
  /// Quarantined jobs visible in the aggregates (this run's failures plus
  /// quarantined resume records that were not retried). > 0 maps to
  /// gt_campaign exit code 3.
  std::size_t jobs_failed = 0;
  CampaignErrorKind error_kind = CampaignErrorKind::kSpec;  ///< valid on failure
};

/// The full engine over an explicit point list (points[i].index must be i,
/// as expand_grid produces). Grid points outside this process's shard get
/// empty aggregates (runs == 0); their results live in other shards'
/// journals until `gt_campaign merge`.
bool run_points_campaign(const std::vector<GridPoint>& points,
                         const std::vector<std::uint64_t>& seeds,
                         const CampaignOptions& options, CampaignResult* out,
                         std::string* error);

bool run_campaign(const CampaignSpec& spec, const CampaignOptions& options,
                  CampaignResult* out, std::string* error);

/// Legacy entry point: whole campaign, no journal, fixed seeds.
bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  CampaignResult* out, std::string* error);

/// Shared command-line surface for the scale-out options — used by both
/// gt_campaign and the figure benches so the flag grammar cannot drift:
///   --jobs N, --shard i/N, --journal PATH, --resume PATH (conflicts with
///   an unequal --journal), --ci-rel FRAC, the adaptive-only flags
///   --max-seeds/--min-seeds/--batch/--metric, which error out loudly
///   when given without --ci-rel (they would otherwise be silent no-ops),
///   and the fault-tolerance flags --isolate, --job-timeout S, --retries N
///   (which requires --isolate or --job-timeout) and --retry-quarantined
///   (which requires --resume).
/// Count-valued flags are validated (digits only, bounded): a negative,
/// non-numeric, or bare path-less value is a usage error, never a silent
/// wraparound or a journal literally named "true".
bool parse_campaign_flags(const Flags& flags, CampaignOptions* options,
                          std::string* error);

/// Drop-in parallel replacement for run_averaged: one scenario, all seeds
/// on the pool, spread statistics included.
PointAggregate run_point(const ScenarioConfig& config,
                         const std::vector<std::uint64_t>& seeds,
                         const RunnerOptions& options = {});

}  // namespace gttsch::campaign
