// Parallel campaign execution: a std::thread worker pool pulls jobs off a
// shared index counter, each job running its own private Simulator via
// run_scenario — runs are embarrassingly parallel and bit-identical to
// serial execution for the same seed, whatever the completion order.
//
// On top of the pool, run_points_campaign adds the three pieces that make
// million-run campaigns practical (see ROADMAP):
//   * sharding   — run only `--shard i/N` of the jobs; shards merge later,
//   * journaling — append each finished job to a crash-safe JSONL journal
//                  and `resume` by skipping jobs already recorded,
//   * adaptive seeding — per-point sequential seed batches that stop once
//                  the 95% CI half-width of a chosen metric is tight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/shard.hpp"
#include "campaign/spec.hpp"
#include "util/flags.hpp"

namespace gttsch::campaign {

/// Snapshot handed to the progress callback after each job completes.
struct Progress {
  std::size_t completed = 0;  ///< jobs finished so far (including this one)
  std::size_t total = 0;
  const Job* job = nullptr;     ///< the job that just finished
  const ExperimentResult* result = nullptr;  ///< its result
};

struct RunnerOptions {
  /// Worker threads; 0 defers to the GTTSCH_JOBS environment variable,
  /// then std::thread::hardware_concurrency().
  int jobs = 0;
  /// Invoked after every job, serialized (never concurrently).
  std::function<void(const Progress&)> on_progress;
  /// How one job is executed; defaults to run_scenario. Tests substitute
  /// a synthetic function to count invocations and shape metric noise.
  std::function<ExperimentResult(const ScenarioConfig&)> run_fn;
  /// Job-aware variant, taking precedence over run_fn: receives the whole
  /// Job so per-job artifacts can be keyed by point/seed index (e.g.
  /// gt_campaign --telemetry-dir writes one JSONL per job).
  std::function<ExperimentResult(const Job&)> run_job_fn;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  struct Result {
    /// Positional: results[i] belongs to jobs[i] of the run() argument,
    /// regardless of completion order.
    std::vector<ExperimentResult> results;
    /// completed[i] is false only when the run was cancelled before job i.
    std::vector<std::uint8_t> completed;
    bool cancelled = false;
  };

  /// Executes every job; blocks until done (or cancelled). Safe to call
  /// repeatedly; each call resets the cancellation flag.
  Result run(const std::vector<Job>& jobs);

  /// Thread-safe: workers stop claiming new jobs; in-flight jobs finish.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  RunnerOptions options_;
  std::atomic<bool> cancel_{false};
};

/// Statistical stopping rule for adaptive seeding: grow each grid point's
/// seed count in batches until the 95% CI half-width of `metric` drops to
/// `ci_rel` * |mean| (relative half-width), or `max_seeds` is reached.
struct AdaptiveOptions {
  double ci_rel = 0.0;        ///< relative CI target; <= 0 disables adaptivity
  std::size_t min_seeds = 3;  ///< never stop before this many seeds
  std::size_t max_seeds = 0;  ///< hard cap; 0 = the provided seed-list length
  std::size_t batch = 2;      ///< seeds added per wave after min_seeds
  std::string metric = "pdr_percent";  ///< see metric_names()

  bool enabled() const { return ci_rel > 0.0; }
};

/// Everything beyond raw pool execution: sharding, journal/resume,
/// adaptive seeding.
struct CampaignOptions {
  RunnerOptions runner;
  ShardSpec shard;           ///< jobs (fixed mode) / points (adaptive mode)
  std::string journal_path;  ///< append per-job JSONL records ("" = off)
  /// Read `journal_path` first and skip every job it records; a missing
  /// journal file is an empty journal (fresh start), so crash-loop
  /// scripts can pass --resume unconditionally.
  bool resume = false;
  AdaptiveOptions adaptive;
};

/// Why a campaign call returned false — callers map kSpec to a usage
/// exit (2) and kIo to a runtime exit (1).
enum class CampaignErrorKind {
  kSpec,  ///< bad spec/options or a journal that mismatches the campaign
  kIo,    ///< journal unreadable/unwritable, write failure (disk full, ...)
};

/// A campaign end-to-end: expand the spec, run all jobs on the pool, merge
/// per-seed results into one PointAggregate per grid point.
struct CampaignResult {
  std::vector<GridPoint> points;
  std::vector<PointAggregate> aggregates;  ///< parallel to `points`
  bool cancelled = false;
  std::size_t jobs_run = 0;      ///< executed by this invocation
  std::size_t jobs_skipped = 0;  ///< satisfied from the resume journal
  CampaignErrorKind error_kind = CampaignErrorKind::kSpec;  ///< valid on failure
};

/// The full engine over an explicit point list (points[i].index must be i,
/// as expand_grid produces). Grid points outside this process's shard get
/// empty aggregates (runs == 0); their results live in other shards'
/// journals until `gt_campaign merge`.
bool run_points_campaign(const std::vector<GridPoint>& points,
                         const std::vector<std::uint64_t>& seeds,
                         const CampaignOptions& options, CampaignResult* out,
                         std::string* error);

bool run_campaign(const CampaignSpec& spec, const CampaignOptions& options,
                  CampaignResult* out, std::string* error);

/// Legacy entry point: whole campaign, no journal, fixed seeds.
bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  CampaignResult* out, std::string* error);

/// Shared command-line surface for the scale-out options — used by both
/// gt_campaign and the figure benches so the flag grammar cannot drift:
///   --jobs N, --shard i/N, --journal PATH, --resume PATH (conflicts with
///   an unequal --journal), --ci-rel FRAC, and the adaptive-only flags
///   --max-seeds/--min-seeds/--batch/--metric, which error out loudly
///   when given without --ci-rel (they would otherwise be silent no-ops).
/// Count-valued flags are validated (digits only, bounded): a negative,
/// non-numeric, or bare path-less value is a usage error, never a silent
/// wraparound or a journal literally named "true".
bool parse_campaign_flags(const Flags& flags, CampaignOptions* options,
                          std::string* error);

/// Drop-in parallel replacement for run_averaged: one scenario, all seeds
/// on the pool, spread statistics included.
PointAggregate run_point(const ScenarioConfig& config,
                         const std::vector<std::uint64_t>& seeds,
                         const RunnerOptions& options = {});

}  // namespace gttsch::campaign
