#include "campaign/spec.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "sixp/sf_registry.hpp"

namespace gttsch::campaign {
namespace {

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& text, bool* out) {
  if (text == "1" || text == "true" || text == "on" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// One settable ScenarioConfig field: parse + range-check + assign.
struct FieldDef {
  const char* name;
  bool (*apply)(ScenarioConfig&, const std::string&, std::string*);
};

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

template <typename T>
bool set_number(ScenarioConfig& c, const std::string& value, std::string* error,
                const char* name, T ScenarioConfig::*member, double lo, double hi) {
  double v = 0;
  if (!parse_double(value, &v)) {
    return fail(error, std::string(name) + ": unparseable value '" + value + "'");
  }
  // Written so NaN fails too (NaN would otherwise pass a < lo || > hi
  // check and invoke UB when cast to an integral field).
  if (!(v >= lo && v <= hi)) {
    return fail(error, std::string(name) + ": value " + value + " out of range [" +
                           format_number(lo) + ", " + format_number(hi) + "]");
  }
  c.*member = static_cast<T>(v);
  return true;
}

bool apply_scheduler(ScenarioConfig& c, const std::string& value, std::string* error) {
  const SfRegistry::Entry* entry = SfRegistry::instance().find(value);
  if (entry == nullptr) {
    return fail(error, "scheduler: unknown value '" + value + "' (expected " +
                           SfRegistry::instance().names_joined(", ") + ")");
  }
  // Canonicalize aliases ("gt" -> "gt-tsch") so fingerprints, journals and
  // CSV labels never depend on which spelling the user typed.
  c.scheduler = entry->key;
  return true;
}

bool apply_topology(ScenarioConfig& c, const std::string& value, std::string* error) {
  for (const TopologyKind kind :
       {TopologyKind::kMultiDodag, TopologyKind::kGrid, TopologyKind::kLine,
        TopologyKind::kRandomDisk}) {
    if (value == topology_name(kind)) {
      c.topology = kind;
      return true;
    }
  }
  return fail(error, "topology: unknown value '" + value +
                         "' (expected multi-dodag, grid, line or random-disk)");
}

bool apply_warmup(ScenarioConfig& c, const std::string& value, std::string* error) {
  double v = 0;
  if (!parse_double(value, &v) || v < 0) {
    return fail(error, "warmup_s: expected a non-negative number of seconds");
  }
  c.warmup = static_cast<TimeUs>(v * 1e6);
  return true;
}

bool apply_measure(ScenarioConfig& c, const std::string& value, std::string* error) {
  double v = 0;
  if (!parse_double(value, &v) || v <= 0) {
    return fail(error, "measure_s: expected a positive number of seconds");
  }
  c.measure = static_cast<TimeUs>(v * 1e6);
  return true;
}

bool apply_trace_kind(ScenarioConfig& c, const std::string& value, std::string* error) {
  if (parse_trace_kind(value, &c.trace_kind)) return true;
  return fail(error, "trace_kind: unknown value '" + value +
                         "' (expected none, file, random-walk, random-waypoint or "
                         "crashloop)");
}

bool apply_trace_path(ScenarioConfig& c, const std::string& value, std::string* error) {
  // Eager syntax check: a bad trace file fails the spec here, naming the
  // offending line, before any simulation runs. Node ids depend on the
  // topology axes and are checked per grid point in expand_grid.
  Trace probe;
  std::string trace_error;
  if (!load_trace(value, &probe, &trace_error)) {
    return fail(error, "trace: " + trace_error);
  }
  c.trace = value;
  return true;
}

bool apply_tx_margin(ScenarioConfig& c, const std::string& value, std::string* error) {
  if (parse_bool(value, &c.enforce_tx_margin)) return true;
  return fail(error, "enforce_tx_margin: expected a boolean, got '" + value + "'");
}

bool apply_interleave(ScenarioConfig& c, const std::string& value, std::string* error) {
  if (parse_bool(value, &c.enforce_interleave)) return true;
  return fail(error, "enforce_interleave: expected a boolean, got '" + value + "'");
}

const FieldDef kFields[] = {
    {"scheduler", apply_scheduler},
    {"topology", apply_topology},
    {"topology_nodes",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "topology_nodes", &ScenarioConfig::topology_nodes, 1,
                         4096);
     }},
    {"disk_radius",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "disk_radius", &ScenarioConfig::disk_radius, 1, 1e5);
     }},
    {"topology_seed",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       // Parsed through the count grammar, not strtod: a seed must
       // round-trip exactly (doubles lose integers beyond 2^53).
       std::uint64_t seed = 0;
       if (!parse_bounded_u64(v, std::numeric_limits<std::uint64_t>::max(), &seed)) {
         return fail(e, "topology_seed: expected a non-negative integer, got '" + v +
                            "'");
       }
       c.topology_seed = seed;
       return true;
     }},
    {"dodag_count",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "dodag_count", &ScenarioConfig::dodag_count, 1, 64);
     }},
    {"nodes_per_dodag",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "nodes_per_dodag", &ScenarioConfig::nodes_per_dodag,
                         2, 256);
     }},
    {"hop_distance",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "hop_distance", &ScenarioConfig::hop_distance, 1,
                         1000);
     }},
    {"radio_range",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "radio_range", &ScenarioConfig::radio_range, 1, 1000);
     }},
    {"interference_factor",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "interference_factor",
                         &ScenarioConfig::interference_factor, 1, 10);
     }},
    {"link_prr",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "link_prr", &ScenarioConfig::link_prr, 0, 1);
     }},
    {"traffic_ppm",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "traffic_ppm", &ScenarioConfig::traffic_ppm, 0, 1e6);
     }},
    {"gt_slotframe_length",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "gt_slotframe_length",
                         &ScenarioConfig::gt_slotframe_length, 4, 65535);
     }},
    {"orchestra_unicast_length",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "orchestra_unicast_length",
                         &ScenarioConfig::orchestra_unicast_length, 1, 65535);
     }},
    {"alice_unicast_length",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "alice_unicast_length",
                         &ScenarioConfig::alice_unicast_length, 1, 65535);
     }},
    {"emsf_slotframe_length",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "emsf_slotframe_length",
                         &ScenarioConfig::emsf_slotframe_length, 2, 65535);
     }},
    {"queue_capacity",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "queue_capacity", &ScenarioConfig::queue_capacity, 1,
                         4096);
     }},
    {"alpha",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "alpha", &ScenarioConfig::alpha, 0, 1e6);
     }},
    {"beta",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "beta", &ScenarioConfig::beta, 0, 1e6);
     }},
    {"gamma",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "gamma", &ScenarioConfig::gamma, 0, 1e6);
     }},
    {"orchestra_channel_hash",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       if (parse_bool(v, &c.orchestra_channel_hash)) return true;
       return fail(e, "orchestra_channel_hash: expected a boolean, got '" + v + "'");
     }},
    {"enforce_tx_margin", apply_tx_margin},
    {"enforce_interleave", apply_interleave},
    {"warmup_s", apply_warmup},
    {"measure_s", apply_measure},
    {"trace_kind", apply_trace_kind},
    {"trace", apply_trace_path},
    {"trace_seed",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       // Exact-u64 grammar, like topology_seed: a seed must round-trip
       // exactly (doubles lose integers beyond 2^53).
       std::uint64_t seed = 0;
       if (!parse_bounded_u64(v, std::numeric_limits<std::uint64_t>::max(), &seed)) {
         return fail(e, "trace_seed: expected a non-negative integer, got '" + v + "'");
       }
       c.trace_seed = seed;
       return true;
     }},
    {"trace_movers",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_movers", &ScenarioConfig::trace_movers, 0,
                         4096);
     }},
    {"trace_speed_mps",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_speed_mps", &ScenarioConfig::trace_speed_mps,
                         0, 1000);
     }},
    {"trace_interval_s",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_interval_s", &ScenarioConfig::trace_interval_s,
                         1e-3, 1e5);
     }},
    {"trace_fail_count",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_fail_count", &ScenarioConfig::trace_fail_count,
                         0, 4096);
     }},
    {"trace_fail_at_s",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_fail_at_s", &ScenarioConfig::trace_fail_at_s,
                         0, 1e9);
     }},
    {"trace_down_s",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_down_s", &ScenarioConfig::trace_down_s, 1e-3,
                         1e9);
     }},
    {"trace_cycle_s",
     [](ScenarioConfig& c, const std::string& v, std::string* e) {
       return set_number(c, v, e, "trace_cycle_s", &ScenarioConfig::trace_cycle_s,
                         1e-3, 1e9);
     }},
};

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

const std::vector<std::string>& known_fields() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const FieldDef& f : kFields) v.push_back(f.name);
    return v;
  }();
  return names;
}

bool apply_field(ScenarioConfig& config, const std::string& field,
                 const std::string& value, std::string* error) {
  for (const FieldDef& f : kFields) {
    if (field == f.name) return f.apply(config, value, error);
  }
  return fail(error, "unknown field '" + field + "'");
}

bool validate(const CampaignSpec& spec, std::string* error) {
  std::set<std::string> seen;
  for (const Axis& axis : spec.axes) {
    if (axis.values.empty()) {
      return fail(error, "axis '" + axis.field + "' has no values");
    }
    if (!seen.insert(axis.field).second) {
      return fail(error, "axis '" + axis.field + "' appears twice");
    }
    ScenarioConfig probe = spec.base;
    for (const std::string& value : axis.values) {
      if (!apply_field(probe, axis.field, value, error)) return false;
    }
  }
  if (spec.seeds.empty()) return fail(error, "seed list is empty");
  std::set<std::uint64_t> unique(spec.seeds.begin(), spec.seeds.end());
  if (unique.size() != spec.seeds.size()) {
    return fail(error, "seed list contains duplicates");
  }
  return true;
}

std::vector<GridPoint> expand_grid(const CampaignSpec& spec, std::string* error) {
  if (!validate(spec, error)) return {};

  std::vector<GridPoint> points;
  GridPoint base;
  base.config = spec.base;
  points.push_back(base);
  for (const Axis& axis : spec.axes) {
    std::vector<GridPoint> next;
    next.reserve(points.size() * axis.values.size());
    for (const GridPoint& p : points) {
      for (const std::string& value : axis.values) {
        GridPoint q = p;
        // Validated above; re-applying cannot fail.
        apply_field(q.config, axis.field, value, nullptr);
        // The scheduler axis canonicalizes aliases ("gt" -> "gt-tsch"):
        // labels, coords and therefore the campaign fingerprint use the
        // canonical key, so journals and CSV rows cannot fork on which
        // spelling the user typed.
        const std::string& shown =
            axis.field == "scheduler" ? q.config.scheduler : value;
        q.coords.emplace_back(axis.field, shown);
        if (!q.label.empty()) q.label += ' ';
        q.label += axis.field + '=' + shown;
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  for (std::size_t i = 0; i < points.size(); ++i) points[i].index = i;
  // Trace setup is cross-field (kind x path x topology x generator knobs)
  // and only checkable on fully resolved points — validate_points_trace
  // runs in run_points_campaign, the chokepoint every execution path
  // (run_campaign and the hand-built bench grids alike) funnels through.
  return points;
}

bool validate_points_trace(const std::vector<GridPoint>& points, std::string* error) {
  // One disk read + parse per unique trace file, however many points
  // reference it (a file axis crossed with other axes repeats each path).
  struct CachedFile {
    bool ok = false;
    Trace trace;
    std::string error;
  };
  std::map<std::string, CachedFile> files;
  for (const GridPoint& point : points) {
    const ScenarioConfig& c = point.config;
    std::string trace_error;
    bool ok;
    if (c.trace_kind == TraceKind::kFile && !c.trace.empty()) {
      auto [it, inserted] = files.try_emplace(c.trace);
      if (inserted) it->second.ok = load_trace(c.trace, &it->second.trace, &it->second.error);
      if (it->second.ok) {
        // Node ids are per point: the same file can be valid for one
        // topology axis value and not another.
        ok = validate_trace_nodes(it->second.trace, c.make_topology(), &trace_error);
      } else {
        ok = false;
        trace_error = it->second.error;
      }
    } else {
      // kNone, the generators, and the empty-path kFile error: all cheap.
      ok = c.validate_trace(&trace_error);
    }
    if (!ok) {
      return fail(error, (point.label.empty() ? std::string("base config")
                                              : "point '" + point.label + "'") +
                             ": " + trace_error);
    }
  }
  return true;
}

std::vector<Job> make_jobs(const CampaignSpec& spec, std::string* error) {
  const std::vector<GridPoint> points = expand_grid(spec, error);
  if (points.empty()) return {};
  return make_jobs(points, spec.seeds);
}

std::vector<Job> make_jobs(const std::vector<GridPoint>& points,
                           const std::vector<std::uint64_t>& seeds) {
  std::vector<Job> jobs;
  jobs.reserve(points.size() * seeds.size());
  for (const GridPoint& point : points) {
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      Job job;
      job.index = jobs.size();
      job.point_index = point.index;
      job.seed_index = s;
      job.config = point.config;
      job.config.seed = seeds[s];
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

bool parse_grid(const std::string& text, std::vector<Axis>* axes,
                std::string* error) {
  axes->clear();
  if (text.empty()) return true;
  for (const std::string& part : split(text, ';')) {
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail(error, "grid axis '" + part + "' is not of the form field=v1,v2");
    }
    Axis axis;
    axis.field = part.substr(0, eq);
    for (const std::string& value : split(part.substr(eq + 1), ',')) {
      if (value.empty()) {
        return fail(error, "grid axis '" + axis.field + "' has an empty value");
      }
      axis.values.push_back(value);
    }
    if (axis.values.empty()) {
      return fail(error, "grid axis '" + axis.field + "' has no values");
    }
    axes->push_back(std::move(axis));
  }
  return true;
}

bool parse_bounded_u64(const std::string& text, std::uint64_t max,
                       std::uint64_t* out) {
  // strtoull accepts leading whitespace and '-' (wrapping around); require
  // plain digits. Overflow clamps to ULLONG_MAX and sets ERANGE, which
  // must be rejected even when max == UINT64_MAX.
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size() || v > max) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_seeds(const std::string& text, std::vector<std::uint64_t>* seeds,
                 std::string* error) {
  seeds->clear();
  for (const std::string& part : split(text, ',')) {
    if (part.empty()) continue;
    std::uint64_t seed = 0;  // seeds use the full 64-bit range (splitmix64)
    if (!parse_bounded_u64(part, UINT64_MAX, &seed)) {
      return fail(error, "seed '" + part + "' is not an unsigned integer");
    }
    if (std::find(seeds->begin(), seeds->end(), seed) != seeds->end()) {
      return fail(error, "seed " + part + " appears twice");
    }
    seeds->push_back(seed);
  }
  if (seeds->empty()) return fail(error, "seed list '" + text + "' is empty");
  return true;
}

std::vector<std::uint64_t> extend_seeds(std::vector<std::uint64_t> seeds,
                                        std::size_t count) {
  std::set<std::uint64_t> used(seeds.begin(), seeds.end());
  std::uint64_t i = 0;
  while (seeds.size() < count) {
    // splitmix64: well-distributed, stateless in the index, so the n-th
    // appended seed is the same on every host.
    std::uint64_t z = (i++) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    if (used.insert(z).second) seeds.push_back(z);
  }
  return seeds;
}

namespace {

/// Incremental 64-bit FNV-1a.
class Fingerprint {
 public:
  void mix(const std::string& s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0xff);  // separator: {"ab","c"} must differ from {"a","bc"}
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void mix(double v) {
    // %.17g round-trips the exact IEEE-754 value (same convention as the
    // journal), so the fingerprint is stable across hosts and rebuilds.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    mix(std::string(buf));
  }
  std::uint64_t value() const { return hash_ == 0 ? 1 : hash_; }

 private:
  void mix_byte(unsigned char b) {
    hash_ = (hash_ ^ b) * 1099511628211ull;
  }
  std::uint64_t hash_ = 14695981039346656037ull;
};

/// Canonical trace-file content per path, memoized across the grid points
/// of one fingerprint call (a file axis crossed with other axes repeats
/// each path): one disk read + parse per unique file.
using TraceContentCache = std::map<std::string, std::string>;

const std::string& canonical_trace_content(const std::string& path,
                                           TraceContentCache& cache) {
  auto [it, inserted] = cache.try_emplace(path);
  if (inserted) {
    Trace t;
    std::string ignored;
    it->second =
        load_trace(path, &t, &ignored) ? format_trace(t) : std::string("<unreadable>");
  }
  return it->second;
}

/// Every ScenarioConfig field except `seed` (per-job, journaled
/// separately), in declaration order. The static_assert below fires when
/// a field is added or resized: extend this list before adjusting it.
void mix_config(Fingerprint& fp, const ScenarioConfig& c, TraceContentCache& cache) {
  // The scheduler is hashed as its canonical name string, not an enum
  // ordinal: registry order can change (new schedulers slot in) without
  // invalidating every existing campaign journal.
  fp.mix(c.scheduler);
  fp.mix(static_cast<std::uint64_t>(c.topology));
  fp.mix(static_cast<std::uint64_t>(c.dodag_count));
  fp.mix(static_cast<std::uint64_t>(c.nodes_per_dodag));
  fp.mix(c.hop_distance);
  fp.mix(static_cast<std::uint64_t>(c.topology_nodes));
  fp.mix(c.disk_radius);
  fp.mix(c.topology_seed);
  fp.mix(c.radio_range);
  fp.mix(c.interference_factor);
  fp.mix(c.link_prr);
  fp.mix(c.traffic_ppm);
  fp.mix(static_cast<std::uint64_t>(c.gt_slotframe_length));
  fp.mix(static_cast<std::uint64_t>(c.orchestra_unicast_length));
  fp.mix(static_cast<std::uint64_t>(c.orchestra_channel_hash));
  fp.mix(static_cast<std::uint64_t>(c.alice_unicast_length));
  fp.mix(static_cast<std::uint64_t>(c.emsf_slotframe_length));
  fp.mix(static_cast<std::uint64_t>(c.queue_capacity));
  fp.mix(c.alpha);
  fp.mix(c.beta);
  fp.mix(c.gamma);
  fp.mix(static_cast<std::uint64_t>(c.enforce_tx_margin));
  fp.mix(static_cast<std::uint64_t>(c.enforce_interleave));
  fp.mix(static_cast<std::uint64_t>(c.warmup));
  fp.mix(static_cast<std::uint64_t>(c.measure));
  fp.mix(static_cast<std::uint64_t>(c.drain));
  fp.mix(static_cast<std::uint64_t>(c.trace_kind));
  fp.mix(c.trace_seed);
  fp.mix(static_cast<std::uint64_t>(c.trace_movers));
  fp.mix(static_cast<std::uint64_t>(c.trace_fail_count));
  fp.mix(c.trace_speed_mps);
  fp.mix(c.trace_interval_s);
  fp.mix(c.trace_fail_at_s);
  fp.mix(c.trace_down_s);
  fp.mix(c.trace_cycle_s);
  fp.mix(c.trace);
  if (c.trace_kind == TraceKind::kFile && !c.trace.empty()) {
    // Fingerprint the trace *content* too, not just the path: editing the
    // file between runs must invalidate resume/merge exactly like any
    // other config change. format_trace canonicalizes, so a cosmetic
    // rewrite (comments, whitespace) does not break resumability. An
    // unreadable file gets a sentinel; validation fails the campaign
    // before any job runs anyway.
    fp.mix(canonical_trace_content(c.trace, cache));
  }
  // `parallel_islands` is deliberately NOT mixed: it is an execution knob
  // (island-parallel stepping is bit-identical to the sequential
  // reference), so two campaigns differing only in lane count are the
  // same campaign and must resume/merge against each other's journals.
}
// The std::string `trace` member makes sizeof stdlib-dependent (32 bytes
// under libstdc++, 24 under libc++), so the tripwire is gated on libstdc++
// — the library every CI leg builds against.
#if (defined(__x86_64__) || defined(__aarch64__)) && defined(_GLIBCXX_RELEASE)
static_assert(sizeof(ScenarioConfig) == 304,
              "ScenarioConfig changed: add the new field to mix_config, then "
              "update this size");
#endif

}  // namespace

std::uint64_t campaign_fingerprint(const std::vector<GridPoint>& points,
                                   const std::vector<std::uint64_t>& seeds) {
  Fingerprint fp;
  TraceContentCache trace_cache;
  for (const GridPoint& point : points) {
    fp.mix(point.label);
    for (const auto& [key, value] : point.coords) {
      fp.mix(key);
      fp.mix(value);
    }
    mix_config(fp, point.config, trace_cache);
  }
  for (const std::uint64_t seed : seeds) fp.mix(seed);
  return fp.value();
}

}  // namespace gttsch::campaign
