#include "campaign/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace gttsch::campaign {
namespace {

int default_worker_count() {
  if (const char* env = std::getenv("GTTSCH_JOBS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {}

Runner::Result Runner::run(const std::vector<Job>& jobs) {
  cancel_.store(false, std::memory_order_relaxed);

  Result out;
  out.results.resize(jobs.size());
  out.completed.assign(jobs.size(), 0);
  if (jobs.empty()) return out;

  int workers = options_.jobs > 0 ? options_.jobs : default_worker_count();
  workers = std::min<int>(workers, static_cast<int>(jobs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      if (cancel_.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      out.results[i] = run_scenario(jobs[i].config);
      out.completed[i] = 1;
      const std::size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.on_progress) {
        Progress p;
        p.completed = completed;
        p.total = jobs.size();
        p.job = &jobs[i];
        std::lock_guard<std::mutex> lock(progress_mutex);
        options_.on_progress(p);
      }
    }
  };

  if (workers == 1) {
    // Serial fast path: no threads, same claim order, same results.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  out.cancelled = cancel_.load(std::memory_order_relaxed);
  return out;
}

bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  CampaignResult* out, std::string* error) {
  std::vector<GridPoint> points = expand_grid(spec, error);
  if (points.empty()) return false;
  const std::vector<Job> jobs = make_jobs(points, spec.seeds);
  if (jobs.empty()) return false;

  Runner runner(options);
  const Runner::Result run = runner.run(jobs);

  std::vector<PointAccumulator> accumulators(points.size());
  for (const Job& job : jobs) {
    if (!run.completed[job.index]) continue;
    accumulators[job.point_index].add(job.seed_index, run.results[job.index]);
  }

  out->points = std::move(points);
  out->aggregates.clear();
  out->aggregates.reserve(out->points.size());
  for (std::size_t i = 0; i < out->points.size(); ++i) {
    PointAggregate agg = accumulators[i].finalize();
    agg.label = out->points[i].label;
    agg.coords = out->points[i].coords;
    out->aggregates.push_back(std::move(agg));
  }
  out->cancelled = run.cancelled;
  return true;
}

PointAggregate run_point(const ScenarioConfig& config,
                         const std::vector<std::uint64_t>& seeds,
                         const RunnerOptions& options) {
  GTTSCH_CHECK(!seeds.empty());
  std::vector<Job> jobs;
  jobs.reserve(seeds.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    Job job;
    job.index = s;
    job.point_index = 0;
    job.seed_index = s;
    job.config = config;
    job.config.seed = seeds[s];
    jobs.push_back(std::move(job));
  }
  Runner runner(options);
  const Runner::Result run = runner.run(jobs);
  PointAccumulator acc;
  for (const Job& job : jobs) {
    if (run.completed[job.index]) acc.add(job.seed_index, run.results[job.index]);
  }
  return acc.finalize();
}

}  // namespace gttsch::campaign
