#include "campaign/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "campaign/journal.hpp"
#include "util/check.hpp"

namespace gttsch::campaign {
namespace {

int default_worker_count() {
  if (const char* env = std::getenv("GTTSCH_JOBS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Parses a count-valued flag with validation, leaving `*out` untouched
/// when the flag is absent. Digits only and capped, so `--max-seeds -1`
/// is a usage error instead of wrapping to ~2^64 (which would send
/// extend_seeds toward an endless loop / OOM), and `--max-seeds abc` is
/// a usage error instead of silently parsing as 0. The cap is low enough
/// that the per-seed bookkeeping it authorizes (the extended seed list,
/// one byte per (point, seed)) stays affordable, not just representable.
bool parse_count_flag(const Flags& flags, const char* name, std::size_t* out,
                      std::string* error) {
  if (!flags.has(name)) return true;
  constexpr std::uint64_t kMaxCount = 1'000'000;
  const std::string v = flags.get(name, "");
  std::uint64_t parsed = 0;
  if (!parse_bounded_u64(v, kMaxCount, &parsed)) {
    return fail(error, std::string("--") + name +
                           ": expected a non-negative integer no greater than " +
                           std::to_string(kMaxCount) + ", got '" + v + "'");
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

/// Loads `path` (when resuming) and validates every record against the
/// campaign: in-range point with the same label, in-range seed index
/// holding the same seed value, matching campaign fingerprint. A missing
/// file is an empty journal so crash-loop scripts can pass --resume
/// unconditionally.
bool load_resume_records(const std::string& path,
                         const std::vector<GridPoint>& points,
                         const std::vector<std::uint64_t>& seeds,
                         std::uint64_t campaign_fp,
                         std::vector<JournalRecord>* records,
                         CampaignErrorKind* kind, std::string* error) {
  records->clear();
  *kind = CampaignErrorKind::kSpec;
  if (path.empty() || !std::filesystem::exists(path)) return true;
  if (!read_journal(path, records, error)) {
    *kind = CampaignErrorKind::kIo;  // unreadable or corrupt mid-file
    return false;
  }
  for (const JournalRecord& r : *records) {
    if (r.campaign_fp != 0 && r.campaign_fp != campaign_fp) {
      // Labels/coords below only cover the swept axes; the fingerprint
      // also covers the base config, so a journal from the same grid run
      // over a different --set (or seed list) is rejected here.
      return fail(error,
                  "journal does not match this campaign: it was written "
                  "with a different base configuration or seed list");
    }
    if (r.point_index >= points.size()) {
      return fail(error, "journal record for point " + std::to_string(r.point_index) +
                             " is out of range (grid has " +
                             std::to_string(points.size()) + " points)");
    }
    if (r.label != points[r.point_index].label) {
      return fail(error, "journal does not match this campaign: point " +
                             std::to_string(r.point_index) + " is '" +
                             points[r.point_index].label + "' but the journal says '" +
                             r.label + "'");
    }
    if (r.seed_index >= seeds.size() || seeds[r.seed_index] != r.seed) {
      return fail(error, "journal does not match this campaign: point " +
                             std::to_string(r.point_index) + " seed #" +
                             std::to_string(r.seed_index) +
                             " disagrees with the seed list");
    }
  }
  return true;
}

/// Wraps the user's progress callback so every completed job is appended
/// to the journal first. on_progress is serialized by the Runner, so the
/// writer needs no extra locking. `runner` is filled in by the caller
/// after construction; a failed append cancels it, because finishing a
/// long campaign whose results can no longer be saved only burns compute
/// — cancelling keeps the journaled prefix resumable.
RunnerOptions with_journal(const RunnerOptions& base, JournalWriter* writer,
                           const std::vector<GridPoint>& points,
                           std::uint64_t campaign_fp, Runner** runner) {
  if (writer == nullptr) return base;
  RunnerOptions wrapped = base;
  const auto user = base.on_progress;
  wrapped.on_progress = [writer, &points, campaign_fp, runner, user](const Progress& p) {
    JournalRecord record;
    record.point_index = p.job->point_index;
    record.seed_index = p.job->seed_index;
    record.seed = p.job->config.seed;
    record.campaign_fp = campaign_fp;
    record.label = points[p.job->point_index].label;
    record.coords = points[p.job->point_index].coords;
    record.result = *p.result;
    if (!writer->append(record) && *runner != nullptr) (*runner)->cancel();
    if (user) user(p);
  };
  return wrapped;
}

void finalize_into(const std::vector<GridPoint>& points,
                   const std::vector<PointAccumulator>& accumulators,
                   CampaignResult* out) {
  out->points = points;
  out->aggregates.clear();
  out->aggregates.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointAggregate agg = accumulators[i].finalize();
    agg.label = points[i].label;
    agg.coords = points[i].coords;
    out->aggregates.push_back(std::move(agg));
  }
}

bool open_journal(const CampaignOptions& options,
                  std::optional<JournalWriter>& writer, CampaignResult* out,
                  std::string* error) {
  if (options.journal_path.empty()) return true;
  writer.emplace(options.journal_path, /*append_mode=*/options.resume);
  if (!writer->ok()) {
    out->error_kind = CampaignErrorKind::kIo;
    return fail(error,
                "cannot open journal '" + options.journal_path + "' for writing");
  }
  return true;
}

/// A journal that went bad mid-run (disk full, handle yanked) breaks the
/// "loses at most in-flight work" contract, so the campaign must fail
/// loudly instead of exiting 0 with records silently missing.
bool check_journal_health(const std::optional<JournalWriter>& writer,
                          const CampaignOptions& options, CampaignResult* out,
                          std::string* error) {
  if (!writer || writer->ok()) return true;
  out->error_kind = CampaignErrorKind::kIo;
  return fail(error, "journal write to '" + options.journal_path +
                         "' failed (disk full?); journal is incomplete");
}

/// Fixed-seed mode: the classic (point x seed) job grid, minus jobs from
/// other shards, minus jobs already in the resume journal.
bool run_fixed(const std::vector<GridPoint>& points,
               const std::vector<std::uint64_t>& seeds,
               std::uint64_t campaign_fp, const CampaignOptions& options,
               CampaignResult* out, std::string* error) {
  const std::vector<Job> all_jobs = make_jobs(points, seeds);
  const std::vector<Job> my_jobs = shard_jobs(all_jobs, options.shard);

  std::vector<JournalRecord> prior;
  if (options.resume &&
      !load_resume_records(options.journal_path, points, seeds, campaign_fp,
                           &prior, &out->error_kind, error)) {
    return false;
  }
  std::set<std::pair<std::size_t, std::size_t>> done;
  for (const JournalRecord& r : prior) done.emplace(r.point_index, r.seed_index);

  std::vector<Job> pending;
  pending.reserve(my_jobs.size());
  for (const Job& job : my_jobs) {
    if (done.count({job.point_index, job.seed_index}) == 0) pending.push_back(job);
  }

  std::optional<JournalWriter> writer;
  if (!open_journal(options, writer, out, error)) return false;

  Runner* runner_ptr = nullptr;
  Runner runner(with_journal(options.runner, writer ? &*writer : nullptr, points,
                             campaign_fp, &runner_ptr));
  runner_ptr = &runner;
  const Runner::Result run = runner.run(pending);

  std::vector<PointAccumulator> accumulators(points.size());
  for (const JournalRecord& r : prior) {
    accumulators[r.point_index].add(r.seed_index, r.result);
  }
  out->jobs_run = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!run.completed[i]) continue;
    accumulators[pending[i].point_index].add(pending[i].seed_index, run.results[i]);
    ++out->jobs_run;
  }
  out->jobs_skipped = my_jobs.size() - pending.size();
  out->cancelled = run.cancelled;
  if (!check_journal_health(writer, options, out, error)) return false;
  finalize_into(points, accumulators, out);
  return true;
}

/// Adaptive mode: per-point sequential seed batches with a CI-driven
/// stopping rule. Points (not jobs) are sharded, because each point's
/// final seed count is data-dependent.
bool run_adaptive(const std::vector<GridPoint>& points,
                  const std::vector<std::uint64_t>& base_seeds,
                  std::uint64_t campaign_fp, const CampaignOptions& options,
                  CampaignResult* out, std::string* error) {
  const AdaptiveOptions& ad = options.adaptive;
  SampleStats PointAggregate::*metric = metric_by_name(ad.metric);
  if (metric == nullptr) {
    return fail(error, "adaptive: unknown metric '" + ad.metric + "'");
  }
  const std::size_t max_seeds = ad.max_seeds > 0 ? ad.max_seeds : base_seeds.size();
  if (max_seeds == 0) return fail(error, "adaptive: empty seed budget");
  // The CI needs a stddev, so never stop below two seeds.
  const std::size_t min_seeds =
      std::min(std::max<std::size_t>(2, ad.min_seeds), max_seeds);
  const std::size_t batch = std::max<std::size_t>(1, ad.batch);
  const std::vector<std::uint64_t> seeds = extend_seeds(base_seeds, max_seeds);

  const std::vector<GridPoint> my_points = shard_points(points, options.shard);
  std::vector<std::uint8_t> in_shard(points.size(), 0);
  for (const GridPoint& point : my_points) in_shard[point.index] = 1;

  std::vector<JournalRecord> prior;
  if (options.resume &&
      !load_resume_records(options.journal_path, points, seeds, campaign_fp,
                           &prior, &out->error_kind, error)) {
    return false;
  }
  std::vector<std::vector<std::uint8_t>> done(
      points.size(), std::vector<std::uint8_t>(max_seeds, 0));
  std::vector<PointAccumulator> accumulators(points.size());
  out->jobs_skipped = 0;
  for (const JournalRecord& r : prior) {
    if (r.seed_index >= max_seeds) {
      // load_resume_records checks against the *extended* seed list, which
      // keeps every base seed even when max_seeds is smaller — but the
      // bookkeeping rows below are only max_seeds wide, so a journal from a
      // run with a larger seed budget must be rejected, not indexed.
      return fail(error, "journal seed #" + std::to_string(r.seed_index) +
                             " for point " + std::to_string(r.point_index) +
                             " exceeds the adaptive seed cap of " +
                             std::to_string(max_seeds) +
                             "; rerun with a larger --max-seeds or without "
                             "adaptive seeding");
    }
    done[r.point_index][r.seed_index] = 1;
    accumulators[r.point_index].add(r.seed_index, r.result);
    // Match fixed mode: report only this shard's jobs as skipped, even
    // when the journal also carries other shards' records.
    if (in_shard[r.point_index]) ++out->jobs_skipped;
  }

  std::optional<JournalWriter> writer;
  if (!open_journal(options, writer, out, error)) return false;

  Runner* runner_ptr = nullptr;
  Runner runner(with_journal(options.runner, writer ? &*writer : nullptr, points,
                             campaign_fp, &runner_ptr));
  runner_ptr = &runner;

  std::vector<std::uint8_t> settled(points.size(), 0);
  auto converged = [&](std::size_t point_index) {
    const PointAggregate agg = accumulators[point_index].finalize();
    const SampleStats& s = agg.*metric;
    return s.ci95_half <= ad.ci_rel * std::fabs(s.mean);
  };

  out->jobs_run = 0;
  out->cancelled = false;
  for (;;) {
    std::vector<Job> wave;
    for (const GridPoint& point : my_points) {
      if (settled[point.index]) continue;
      const std::size_t n = accumulators[point.index].size();
      if ((n >= min_seeds && converged(point.index)) || n >= max_seeds) {
        settled[point.index] = 1;
        continue;
      }
      const std::size_t target =
          n < min_seeds ? min_seeds : std::min(n + batch, max_seeds);
      std::size_t scheduled = 0;
      for (std::size_t s = 0; s < max_seeds && n + scheduled < target; ++s) {
        if (done[point.index][s]) continue;
        Job job;
        job.index = wave.size();
        job.point_index = point.index;
        job.seed_index = s;
        job.config = point.config;
        job.config.seed = seeds[s];
        wave.push_back(std::move(job));
        ++scheduled;
      }
    }
    if (wave.empty()) break;

    const Runner::Result run = runner.run(wave);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (!run.completed[i]) continue;
      accumulators[wave[i].point_index].add(wave[i].seed_index, run.results[i]);
      done[wave[i].point_index][wave[i].seed_index] = 1;
      ++out->jobs_run;
    }
    if (run.cancelled) {
      out->cancelled = true;
      break;
    }
  }

  if (!check_journal_health(writer, options, out, error)) return false;
  finalize_into(points, accumulators, out);
  return true;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {}

Runner::Result Runner::run(const std::vector<Job>& jobs) {
  cancel_.store(false, std::memory_order_relaxed);

  Result out;
  out.results.resize(jobs.size());
  out.completed.assign(jobs.size(), 0);
  if (jobs.empty()) return out;

  int workers = options_.jobs > 0 ? options_.jobs : default_worker_count();
  workers = std::min<int>(workers, static_cast<int>(jobs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      if (cancel_.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      out.results[i] = options_.run_job_fn ? options_.run_job_fn(jobs[i])
                       : options_.run_fn   ? options_.run_fn(jobs[i].config)
                                           : run_scenario(jobs[i].config);
      out.completed[i] = 1;
      const std::size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.on_progress) {
        Progress p;
        p.completed = completed;
        p.total = jobs.size();
        p.job = &jobs[i];
        p.result = &out.results[i];
        std::lock_guard<std::mutex> lock(progress_mutex);
        options_.on_progress(p);
      }
    }
  };

  if (workers == 1) {
    // Serial fast path: no threads, same claim order, same results.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  out.cancelled = cancel_.load(std::memory_order_relaxed);
  return out;
}

bool run_points_campaign(const std::vector<GridPoint>& points,
                         const std::vector<std::uint64_t>& seeds,
                         const CampaignOptions& options, CampaignResult* out,
                         std::string* error) {
  if (points.empty()) return fail(error, "campaign has no grid points");
  if (seeds.empty()) return fail(error, "campaign has no seeds");
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Journals and shards key on point.index; it must be the position.
    GTTSCH_CHECK(points[i].index == i);
  }
  if (options.shard.count == 0 || options.shard.index >= options.shard.count) {
    return fail(error, "invalid shard spec");
  }
  if (options.resume && options.journal_path.empty()) {
    return fail(error, "resume requested without a journal path");
  }
  // Callers that bypass expand_grid (the figure benches build their grids
  // by hand) still get the loud pre-run trace check instead of an abort
  // deep inside run_scenario.
  if (!validate_points_trace(points, error)) return false;
  const std::uint64_t campaign_fp = campaign_fingerprint(points, seeds);
  return options.adaptive.enabled()
             ? run_adaptive(points, seeds, campaign_fp, options, out, error)
             : run_fixed(points, seeds, campaign_fp, options, out, error);
}

bool run_campaign(const CampaignSpec& spec, const CampaignOptions& options,
                  CampaignResult* out, std::string* error) {
  const std::vector<GridPoint> points = expand_grid(spec, error);
  if (points.empty()) return false;
  return run_points_campaign(points, spec.seeds, options, out, error);
}

bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  CampaignResult* out, std::string* error) {
  CampaignOptions full;
  full.runner = options;
  return run_campaign(spec, full, out, error);
}

bool parse_campaign_flags(const Flags& flags, CampaignOptions* options,
                          std::string* error) {
  std::size_t jobs = 0;
  if (!parse_count_flag(flags, "jobs", &jobs, error)) return false;
  if (flags.has("jobs")) options->runner.jobs = static_cast<int>(jobs);
  if (flags.has("shard") &&
      !parse_shard(flags.get("shard", ""), &options->shard, error)) {
    return false;
  }
  if (flags.has("journal")) {
    const std::string journal_path = flags.get("journal", "");
    // A bare `--journal` parses as the value "true"; require a real path.
    if (journal_path.empty() || journal_path == "true") {
      return fail(error, "--journal: expected a journal path");
    }
    options->journal_path = journal_path;
  }
  if (flags.has("resume")) {
    const std::string resume_path = flags.get("resume", "");
    // A bare `--resume` parses as the value "true"; require a real path.
    if (resume_path.empty() || resume_path == "true") {
      return fail(error, "--resume: expected a journal path");
    }
    if (!options->journal_path.empty() && options->journal_path != resume_path) {
      return fail(error, "--resume conflicts with --journal (pass one or the other)");
    }
    options->journal_path = resume_path;
    options->resume = true;
  }

  AdaptiveOptions& adaptive = options->adaptive;
  if (flags.has("ci-rel")) {
    adaptive.ci_rel = flags.get_double("ci-rel", 0.0);
    if (!(adaptive.ci_rel > 0.0)) {
      return fail(error, "--ci-rel: expected a positive fraction, got '" +
                             flags.get("ci-rel", "") + "'");
    }
  }
  for (const char* name : {"max-seeds", "min-seeds", "batch", "metric"}) {
    if (flags.has(name) && !adaptive.enabled()) {
      return fail(error, std::string("--") + name +
                             " only takes effect with --ci-rel (adaptive seeding)");
    }
  }
  if (!parse_count_flag(flags, "max-seeds", &adaptive.max_seeds, error) ||
      !parse_count_flag(flags, "min-seeds", &adaptive.min_seeds, error) ||
      !parse_count_flag(flags, "batch", &adaptive.batch, error)) {
    return false;
  }
  adaptive.metric = flags.get("metric", adaptive.metric);
  if (metric_by_name(adaptive.metric) == nullptr) {
    return fail(error, "--metric: unknown metric '" + adaptive.metric +
                           "' (see --list-metrics)");
  }
  return true;
}

PointAggregate run_point(const ScenarioConfig& config,
                         const std::vector<std::uint64_t>& seeds,
                         const RunnerOptions& options) {
  GTTSCH_CHECK(!seeds.empty());
  std::vector<Job> jobs;
  jobs.reserve(seeds.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    Job job;
    job.index = s;
    job.point_index = 0;
    job.seed_index = s;
    job.config = config;
    job.config.seed = seeds[s];
    jobs.push_back(std::move(job));
  }
  Runner runner(options);
  const Runner::Result run = runner.run(jobs);
  PointAccumulator acc;
  for (const Job& job : jobs) {
    if (run.completed[job.index]) acc.add(job.seed_index, run.results[job.index]);
  }
  return acc.finalize();
}

}  // namespace gttsch::campaign
