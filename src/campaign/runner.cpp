#include "campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "campaign/isolate.hpp"
#include "campaign/journal.hpp"
#include "util/check.hpp"
#include "util/concurrency.hpp"

namespace gttsch::campaign {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Parses a count-valued flag with validation, leaving `*out` untouched
/// when the flag is absent. Digits only and capped, so `--max-seeds -1`
/// is a usage error instead of wrapping to ~2^64 (which would send
/// extend_seeds toward an endless loop / OOM), and `--max-seeds abc` is
/// a usage error instead of silently parsing as 0. The cap is low enough
/// that the per-seed bookkeeping it authorizes (the extended seed list,
/// one byte per (point, seed)) stays affordable, not just representable.
bool parse_count_flag(const Flags& flags, const char* name, std::size_t* out,
                      std::string* error) {
  if (!flags.has(name)) return true;
  constexpr std::uint64_t kMaxCount = 1'000'000;
  const std::string v = flags.get(name, "");
  std::uint64_t parsed = 0;
  if (!parse_bounded_u64(v, kMaxCount, &parsed)) {
    return fail(error, std::string("--") + name +
                           ": expected a non-negative integer no greater than " +
                           std::to_string(kMaxCount) + ", got '" + v + "'");
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

/// Loads `path` (when resuming) and validates every record against the
/// campaign: in-range point with the same label, in-range seed index
/// holding the same seed value, matching campaign fingerprint. A missing
/// file is an empty journal so crash-loop scripts can pass --resume
/// unconditionally.
bool load_resume_records(const std::string& path,
                         const std::vector<GridPoint>& points,
                         const std::vector<std::uint64_t>& seeds,
                         std::uint64_t campaign_fp,
                         std::vector<JournalRecord>* records,
                         CampaignErrorKind* kind, std::string* error) {
  records->clear();
  *kind = CampaignErrorKind::kSpec;
  if (path.empty() || !std::filesystem::exists(path)) return true;
  if (!read_journal(path, records, error)) {
    *kind = CampaignErrorKind::kIo;  // unreadable or corrupt mid-file
    return false;
  }
  for (const JournalRecord& r : *records) {
    if (r.campaign_fp != 0 && r.campaign_fp != campaign_fp) {
      // Labels/coords below only cover the swept axes; the fingerprint
      // also covers the base config, so a journal from the same grid run
      // over a different --set (or seed list) is rejected here.
      return fail(error,
                  "journal does not match this campaign: it was written "
                  "with a different base configuration or seed list");
    }
    if (r.point_index >= points.size()) {
      return fail(error, "journal record for point " + std::to_string(r.point_index) +
                             " is out of range (grid has " +
                             std::to_string(points.size()) + " points)");
    }
    if (r.label != points[r.point_index].label) {
      return fail(error, "journal does not match this campaign: point " +
                             std::to_string(r.point_index) + " is '" +
                             points[r.point_index].label + "' but the journal says '" +
                             r.label + "'");
    }
    if (r.seed_index >= seeds.size() || seeds[r.seed_index] != r.seed) {
      return fail(error, "journal does not match this campaign: point " +
                             std::to_string(r.point_index) + " seed #" +
                             std::to_string(r.seed_index) +
                             " disagrees with the seed list");
    }
  }
  return true;
}

/// Wraps the user's progress callback so every completed job is appended
/// to the journal first. on_progress is serialized by the Runner, so the
/// writer needs no extra locking. `runner` is filled in by the caller
/// after construction; a failed append cancels it, because finishing a
/// long campaign whose results can no longer be saved only burns compute
/// — cancelling keeps the journaled prefix resumable.
RunnerOptions with_journal(const RunnerOptions& base, JournalWriter* writer,
                           const std::vector<GridPoint>& points,
                           std::uint64_t campaign_fp, Runner** runner) {
  if (writer == nullptr) return base;
  RunnerOptions wrapped = base;
  const auto user = base.on_progress;
  wrapped.on_progress = [writer, &points, campaign_fp, runner, user](const Progress& p) {
    JournalRecord record;
    record.point_index = p.job->point_index;
    record.seed_index = p.job->seed_index;
    record.seed = p.job->config.seed;
    record.campaign_fp = campaign_fp;
    record.label = points[p.job->point_index].label;
    record.coords = points[p.job->point_index].coords;
    record.status = p.outcome->status;
    record.attempts = p.outcome->attempts;
    record.exit_code = p.outcome->exit_code;
    record.term_signal = p.outcome->term_signal;
    if (p.outcome->status == JobStatus::kOk) record.result = p.outcome->result;
    if (!writer->append(record) && *runner != nullptr) (*runner)->cancel();
    if (user) user(p);
  };
  return wrapped;
}

void finalize_into(const std::vector<GridPoint>& points,
                   const std::vector<PointAccumulator>& accumulators,
                   CampaignResult* out) {
  out->points = points;
  out->aggregates.clear();
  out->aggregates.reserve(points.size());
  out->jobs_failed = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointAggregate agg = accumulators[i].finalize();
    agg.label = points[i].label;
    agg.coords = points[i].coords;
    out->jobs_failed += static_cast<std::size_t>(agg.runs_failed);
    out->aggregates.push_back(std::move(agg));
  }
}

bool open_journal(const CampaignOptions& options,
                  std::optional<JournalWriter>& writer, CampaignResult* out,
                  std::string* error) {
  if (options.journal_path.empty()) return true;
  writer.emplace(options.journal_path, /*append_mode=*/options.resume);
  if (!writer->ok()) {
    out->error_kind = CampaignErrorKind::kIo;
    return fail(error,
                "cannot open journal '" + options.journal_path + "' for writing");
  }
  return true;
}

/// A journal that went bad mid-run (disk full, handle yanked) breaks the
/// "loses at most in-flight work" contract, so the campaign must fail
/// loudly instead of exiting 0 with records silently missing.
bool check_journal_health(const std::optional<JournalWriter>& writer,
                          const CampaignOptions& options, CampaignResult* out,
                          std::string* error) {
  if (!writer || writer->ok()) return true;
  out->error_kind = CampaignErrorKind::kIo;
  return fail(error, "journal write to '" + options.journal_path +
                         "' failed (disk full?); journal is incomplete");
}

/// Fixed-seed mode: the classic (point x seed) job grid, minus jobs from
/// other shards, minus jobs already in the resume journal.
bool run_fixed(const std::vector<GridPoint>& points,
               const std::vector<std::uint64_t>& seeds,
               std::uint64_t campaign_fp, const CampaignOptions& options,
               CampaignResult* out, std::string* error) {
  const std::vector<Job> all_jobs = make_jobs(points, seeds);
  const std::vector<Job> my_jobs = shard_jobs(all_jobs, options.shard);

  std::vector<JournalRecord> prior;
  if (options.resume &&
      !load_resume_records(options.journal_path, points, seeds, campaign_fp,
                           &prior, &out->error_kind, error)) {
    return false;
  }
  // Ok records are always satisfied from the journal. Quarantined records
  // are too — a crashed job stays quarantined across resumes — unless
  // --retry-quarantined asks for them to run again.
  std::set<std::pair<std::size_t, std::size_t>> done;
  for (const JournalRecord& r : prior) {
    if (r.status != JobStatus::kOk && options.fault.retry_quarantined) continue;
    done.emplace(r.point_index, r.seed_index);
  }

  std::vector<Job> pending;
  pending.reserve(my_jobs.size());
  for (const Job& job : my_jobs) {
    if (done.count({job.point_index, job.seed_index}) == 0) pending.push_back(job);
  }

  std::optional<JournalWriter> writer;
  if (!open_journal(options, writer, out, error)) return false;

  Runner* runner_ptr = nullptr;
  Runner runner(with_journal(options.runner, writer ? &*writer : nullptr, points,
                             campaign_fp, &runner_ptr));
  runner_ptr = &runner;
  const Runner::Result run = runner.run(pending);

  std::vector<PointAccumulator> accumulators(points.size());
  for (const JournalRecord& r : prior) {
    if (r.status == JobStatus::kOk) {
      accumulators[r.point_index].add(r.seed_index, r.result);
    } else if (!options.fault.retry_quarantined) {
      accumulators[r.point_index].add_failure(r.seed_index, r.status);
    }
    // retry_quarantined failures were left out of `done`; their re-run
    // outcome below decides what the aggregate sees.
  }
  out->jobs_run = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!run.completed[i]) continue;
    const JobOutcome& outcome = run.outcomes[i];
    if (outcome.status == JobStatus::kOk) {
      accumulators[pending[i].point_index].add(pending[i].seed_index,
                                               outcome.result);
    } else {
      accumulators[pending[i].point_index].add_failure(pending[i].seed_index,
                                                       outcome.status);
    }
    ++out->jobs_run;
  }
  out->jobs_skipped = my_jobs.size() - pending.size();
  out->cancelled = run.cancelled;
  if (!check_journal_health(writer, options, out, error)) return false;
  finalize_into(points, accumulators, out);
  return true;
}

/// Adaptive mode: per-point sequential seed batches with a CI-driven
/// stopping rule. Points (not jobs) are sharded, because each point's
/// final seed count is data-dependent.
bool run_adaptive(const std::vector<GridPoint>& points,
                  const std::vector<std::uint64_t>& base_seeds,
                  std::uint64_t campaign_fp, const CampaignOptions& options,
                  CampaignResult* out, std::string* error) {
  const AdaptiveOptions& ad = options.adaptive;
  SampleStats PointAggregate::*metric = metric_by_name(ad.metric);
  if (metric == nullptr) {
    return fail(error, "adaptive: unknown metric '" + ad.metric + "'");
  }
  const std::size_t max_seeds = ad.max_seeds > 0 ? ad.max_seeds : base_seeds.size();
  if (max_seeds == 0) return fail(error, "adaptive: empty seed budget");
  // The CI needs a stddev, so never stop below two seeds.
  const std::size_t min_seeds =
      std::min(std::max<std::size_t>(2, ad.min_seeds), max_seeds);
  const std::size_t batch = std::max<std::size_t>(1, ad.batch);
  const std::vector<std::uint64_t> seeds = extend_seeds(base_seeds, max_seeds);

  const std::vector<GridPoint> my_points = shard_points(points, options.shard);
  std::vector<std::uint8_t> in_shard(points.size(), 0);
  for (const GridPoint& point : my_points) in_shard[point.index] = 1;

  std::vector<JournalRecord> prior;
  if (options.resume &&
      !load_resume_records(options.journal_path, points, seeds, campaign_fp,
                           &prior, &out->error_kind, error)) {
    return false;
  }
  std::vector<std::vector<std::uint8_t>> done(
      points.size(), std::vector<std::uint8_t>(max_seeds, 0));
  std::vector<PointAccumulator> accumulators(points.size());
  out->jobs_skipped = 0;
  for (const JournalRecord& r : prior) {
    if (r.seed_index >= max_seeds) {
      // load_resume_records checks against the *extended* seed list, which
      // keeps every base seed even when max_seeds is smaller — but the
      // bookkeeping rows below are only max_seeds wide, so a journal from a
      // run with a larger seed budget must be rejected, not indexed.
      return fail(error, "journal seed #" + std::to_string(r.seed_index) +
                             " for point " + std::to_string(r.point_index) +
                             " exceeds the adaptive seed cap of " +
                             std::to_string(max_seeds) +
                             "; rerun with a larger --max-seeds or without "
                             "adaptive seeding");
    }
    if (r.status != JobStatus::kOk && options.fault.retry_quarantined) {
      continue;  // leave done == 0 so the wave scheduler re-runs the seed
    }
    done[r.point_index][r.seed_index] = 1;
    if (r.status == JobStatus::kOk) {
      accumulators[r.point_index].add(r.seed_index, r.result);
    } else {
      // Quarantined seed: it holds its done slot (so waves skip it) but
      // contributes only failure accounting; the stopping rule proceeds
      // on the surviving seeds.
      accumulators[r.point_index].add_failure(r.seed_index, r.status);
    }
    // Match fixed mode: report only this shard's jobs as skipped, even
    // when the journal also carries other shards' records.
    if (in_shard[r.point_index]) ++out->jobs_skipped;
  }

  std::optional<JournalWriter> writer;
  if (!open_journal(options, writer, out, error)) return false;

  Runner* runner_ptr = nullptr;
  Runner runner(with_journal(options.runner, writer ? &*writer : nullptr, points,
                             campaign_fp, &runner_ptr));
  runner_ptr = &runner;

  std::vector<std::uint8_t> settled(points.size(), 0);
  auto converged = [&](std::size_t point_index) {
    const PointAggregate agg = accumulators[point_index].finalize();
    const SampleStats& s = agg.*metric;
    return s.ci95_half <= ad.ci_rel * std::fabs(s.mean);
  };

  out->jobs_run = 0;
  out->cancelled = false;
  for (;;) {
    std::vector<Job> wave;
    for (const GridPoint& point : my_points) {
      if (settled[point.index]) continue;
      const std::size_t n = accumulators[point.index].size();
      if ((n >= min_seeds && converged(point.index)) || n >= max_seeds) {
        settled[point.index] = 1;
        continue;
      }
      const std::size_t target =
          n < min_seeds ? min_seeds : std::min(n + batch, max_seeds);
      std::size_t scheduled = 0;
      for (std::size_t s = 0; s < max_seeds && n + scheduled < target; ++s) {
        if (done[point.index][s]) continue;
        Job job;
        job.index = wave.size();
        job.point_index = point.index;
        job.seed_index = s;
        job.config = point.config;
        job.config.seed = seeds[s];
        wave.push_back(std::move(job));
        ++scheduled;
      }
    }
    if (wave.empty()) break;

    const Runner::Result run = runner.run(wave);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (!run.completed[i]) continue;
      const JobOutcome& outcome = run.outcomes[i];
      if (outcome.status == JobStatus::kOk) {
        accumulators[wave[i].point_index].add(wave[i].seed_index, outcome.result);
      } else {
        // The failed seed is spent (done), not re-scheduled: adaptivity
        // may still reach its CI target with later seeds, and a
        // deterministic crasher would otherwise burn the whole budget.
        accumulators[wave[i].point_index].add_failure(wave[i].seed_index,
                                                      outcome.status);
      }
      done[wave[i].point_index][wave[i].seed_index] = 1;
      ++out->jobs_run;
    }
    if (run.cancelled) {
      out->cancelled = true;
      break;
    }
  }

  if (!check_journal_health(writer, options, out, error)) return false;
  finalize_into(points, accumulators, out);
  return true;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {}

Runner::Result Runner::run(const std::vector<Job>& jobs) {
  cancel_.store(false, std::memory_order_relaxed);

  Result out;
  out.outcomes.resize(jobs.size());
  out.completed.assign(jobs.size(), 0);
  if (jobs.empty()) return out;

  // default_worker_count (util/concurrency) handles the GTTSCH_JOBS env
  // override and the hardware_concurrency()==0 case (clamped to 1, never
  // 0 workers).
  int workers = default_worker_count(options_.jobs);
  workers = std::min<int>(workers, static_cast<int>(jobs.size()));

  // Reserve our worker count for the duration of the campaign so nested
  // island-parallel runs size themselves into the leftover hardware
  // threads instead of multiplying against us (GTTSCH_JOBS x islands
  // stays bounded by the machine).
  WorkerReservation reservation(workers);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto should_cancel = [&] {
    if (cancel_.load(std::memory_order_relaxed)) return true;
    // External cancellation (a SIGINT flag): latch it into the internal
    // flag so every worker — and the caller via Result::cancelled — sees
    // one consistent signal.
    if (options_.cancel_flag != nullptr &&
        options_.cancel_flag->load(std::memory_order_relaxed)) {
      cancel_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  auto execute = [&](const Job& job) -> JobOutcome {
    if (options_.execute_fn) return options_.execute_fn(job);
    JobOutcome outcome;
    outcome.result = options_.run_job_fn ? options_.run_job_fn(job)
                     : options_.run_fn   ? options_.run_fn(job.config)
                                         : run_scenario(job.config);
    return outcome;
  };

  auto worker = [&] {
    for (;;) {
      if (should_cancel()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      JobOutcome outcome = execute(jobs[i]);
      outcome.attempts = 1;
      // Perturbation-free retries: the exact same job, with exponential
      // backoff so a transient failure (OOM pressure, a busy host) gets
      // breathing room. Only the final outcome is reported/journaled.
      while (outcome.status != JobStatus::kOk &&
             outcome.attempts <= options_.retries && !should_cancel()) {
        const int shift = std::min(outcome.attempts - 1, 10);
        const int backoff_ms =
            std::min(options_.retry_backoff_ms << shift, 10'000);
        if (backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        }
        JobOutcome retry = execute(jobs[i]);
        retry.attempts = outcome.attempts + 1;
        outcome = std::move(retry);
      }
      out.outcomes[i] = std::move(outcome);
      out.completed[i] = 1;
      const std::size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.on_progress) {
        Progress p;
        p.completed = completed;
        p.total = jobs.size();
        p.job = &jobs[i];
        p.outcome = &out.outcomes[i];
        p.result = &out.outcomes[i].result;
        std::lock_guard<std::mutex> lock(progress_mutex);
        options_.on_progress(p);
      }
    }
  };

  if (workers == 1) {
    // Serial fast path: no threads, same claim order, same results.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  out.cancelled = cancel_.load(std::memory_order_relaxed);
  return out;
}

bool run_points_campaign(const std::vector<GridPoint>& points,
                         const std::vector<std::uint64_t>& seeds,
                         const CampaignOptions& options, CampaignResult* out,
                         std::string* error) {
  if (points.empty()) return fail(error, "campaign has no grid points");
  if (seeds.empty()) return fail(error, "campaign has no seeds");
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Journals and shards key on point.index; it must be the position.
    GTTSCH_CHECK(points[i].index == i);
  }
  if (options.shard.count == 0 || options.shard.index >= options.shard.count) {
    return fail(error, "invalid shard spec");
  }
  if (options.resume && options.journal_path.empty()) {
    return fail(error, "resume requested without a journal path");
  }
  // Callers that bypass expand_grid (the figure benches build their grids
  // by hand) still get the loud pre-run trace check instead of an abort
  // deep inside run_scenario.
  if (!validate_points_trace(points, error)) return false;

  CampaignOptions effective = options;
  if (options.fault.active()) {
    if (options.runner.run_fn || options.runner.run_job_fn ||
        options.runner.execute_fn) {
      return fail(error,
                  "fault-tolerant execution (--isolate / --job-timeout) cannot "
                  "be combined with a custom run function (e.g. --telemetry-dir)");
    }
    if (options.fault.isolate && options.fault.exec_path.empty()) {
      return fail(error, "isolate requested without an executable path");
    }
    effective.runner.retries = options.fault.retries;
    effective.runner.retry_backoff_ms = options.fault.retry_backoff_ms;
    if (options.fault.isolate) {
      // Labels ride along so the child can key per-point behavior (the
      // chaos hook) and the parent can verify the echo. shared_ptr: the
      // closure must stay valid after this frame for the worker threads.
      auto labels = std::make_shared<std::vector<std::string>>();
      labels->reserve(points.size());
      for (const GridPoint& point : points) labels->push_back(point.label);
      const std::string exec_path = options.fault.exec_path;
      const double timeout_s = options.fault.job_timeout_s;
      effective.runner.execute_fn = [labels, exec_path,
                                     timeout_s](const Job& job) {
        JobEnvelope envelope;
        envelope.point_index = job.point_index;
        envelope.seed_index = job.seed_index;
        envelope.label = (*labels)[job.point_index];
        envelope.config = job.config;
        return run_job_isolated(exec_path, timeout_s, envelope);
      };
    } else {
      // In-process fallback: no crash protection, but the simulator
      // watchdog still converts a livelocked/overlong run into a
      // quarantined job instead of a hung campaign.
      const double timeout_s = options.fault.job_timeout_s;
      effective.runner.execute_fn = [timeout_s](const Job& job) {
        JobOutcome outcome;
        RunGuard guard;
        guard.max_wall_s = timeout_s;
        std::string guard_error;
        if (!run_scenario_guarded(job.config, guard, &outcome.result,
                                  &guard_error)) {
          outcome.status = JobStatus::kFailed;
          outcome.detail = guard_error;
        }
        return outcome;
      };
    }
  }

  const std::uint64_t campaign_fp = campaign_fingerprint(points, seeds);
  return options.adaptive.enabled()
             ? run_adaptive(points, seeds, campaign_fp, effective, out, error)
             : run_fixed(points, seeds, campaign_fp, effective, out, error);
}

bool run_campaign(const CampaignSpec& spec, const CampaignOptions& options,
                  CampaignResult* out, std::string* error) {
  const std::vector<GridPoint> points = expand_grid(spec, error);
  if (points.empty()) return false;
  return run_points_campaign(points, spec.seeds, options, out, error);
}

bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  CampaignResult* out, std::string* error) {
  CampaignOptions full;
  full.runner = options;
  return run_campaign(spec, full, out, error);
}

bool parse_campaign_flags(const Flags& flags, CampaignOptions* options,
                          std::string* error) {
  std::size_t jobs = 0;
  if (!parse_count_flag(flags, "jobs", &jobs, error)) return false;
  if (flags.has("jobs")) options->runner.jobs = static_cast<int>(jobs);
  if (flags.has("shard") &&
      !parse_shard(flags.get("shard", ""), &options->shard, error)) {
    return false;
  }
  if (flags.has("journal")) {
    const std::string journal_path = flags.get("journal", "");
    // A bare `--journal` parses as the value "true"; require a real path.
    if (journal_path.empty() || journal_path == "true") {
      return fail(error, "--journal: expected a journal path");
    }
    options->journal_path = journal_path;
  }
  if (flags.has("resume")) {
    const std::string resume_path = flags.get("resume", "");
    // A bare `--resume` parses as the value "true"; require a real path.
    if (resume_path.empty() || resume_path == "true") {
      return fail(error, "--resume: expected a journal path");
    }
    if (!options->journal_path.empty() && options->journal_path != resume_path) {
      return fail(error, "--resume conflicts with --journal (pass one or the other)");
    }
    options->journal_path = resume_path;
    options->resume = true;
  }

  AdaptiveOptions& adaptive = options->adaptive;
  if (flags.has("ci-rel")) {
    adaptive.ci_rel = flags.get_double("ci-rel", 0.0);
    if (!(adaptive.ci_rel > 0.0)) {
      return fail(error, "--ci-rel: expected a positive fraction, got '" +
                             flags.get("ci-rel", "") + "'");
    }
  }
  for (const char* name : {"max-seeds", "min-seeds", "batch", "metric"}) {
    if (flags.has(name) && !adaptive.enabled()) {
      return fail(error, std::string("--") + name +
                             " only takes effect with --ci-rel (adaptive seeding)");
    }
  }
  if (!parse_count_flag(flags, "max-seeds", &adaptive.max_seeds, error) ||
      !parse_count_flag(flags, "min-seeds", &adaptive.min_seeds, error) ||
      !parse_count_flag(flags, "batch", &adaptive.batch, error)) {
    return false;
  }
  adaptive.metric = flags.get("metric", adaptive.metric);
  if (metric_by_name(adaptive.metric) == nullptr) {
    return fail(error, "--metric: unknown metric '" + adaptive.metric +
                           "' (see --list-metrics)");
  }

  FaultOptions& fault = options->fault;
  fault.isolate = flags.get_bool("isolate", fault.isolate);
  if (flags.has("job-timeout")) {
    fault.job_timeout_s = flags.get_double("job-timeout", 0.0);
    if (!(fault.job_timeout_s > 0.0)) {
      return fail(error, "--job-timeout: expected a positive number of "
                         "seconds, got '" +
                             flags.get("job-timeout", "") + "'");
    }
  }
  std::size_t retries = 0;
  if (!parse_count_flag(flags, "retries", &retries, error)) return false;
  if (flags.has("retries")) {
    // Without isolation or a watchdog every run path is infallible, so a
    // lone --retries would be a silent no-op; reject it loudly like the
    // adaptive-only flags above.
    if (!fault.active()) {
      return fail(error,
                  "--retries only takes effect with --isolate or --job-timeout");
    }
    fault.retries = static_cast<int>(retries);
  }
  if (flags.has("retry-quarantined")) {
    fault.retry_quarantined = flags.get_bool("retry-quarantined", false);
    if (fault.retry_quarantined && !options->resume) {
      return fail(error,
                  "--retry-quarantined only takes effect with --resume");
    }
  }
  return true;
}

PointAggregate run_point(const ScenarioConfig& config,
                         const std::vector<std::uint64_t>& seeds,
                         const RunnerOptions& options) {
  GTTSCH_CHECK(!seeds.empty());
  std::vector<Job> jobs;
  jobs.reserve(seeds.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    Job job;
    job.index = s;
    job.point_index = 0;
    job.seed_index = s;
    job.config = config;
    job.config.seed = seeds[s];
    jobs.push_back(std::move(job));
  }
  Runner runner(options);
  const Runner::Result run = runner.run(jobs);
  PointAccumulator acc;
  for (const Job& job : jobs) {
    if (run.completed[job.index] &&
        run.outcomes[job.index].status == JobStatus::kOk) {
      acc.add(job.seed_index, run.outcomes[job.index].result);
    }
  }
  return acc.finalize();
}

}  // namespace gttsch::campaign
