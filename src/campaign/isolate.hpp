// Process isolation for campaign jobs (--isolate): each job runs in a
// forked+exec'd child re-entering the campaign tool via the hidden
// `gt_campaign run-job` protocol, so a segfault, OOM kill, or livelocked
// simulation takes down one job instead of the whole campaign.
//
// Protocol (all single JSON lines over the child's stdin/stdout):
//   parent -> child : JobEnvelope (point/seed identity + the exact
//                     ScenarioConfig, doubles at %.17g, times in µs)
//   child  -> parent: one journal-record line (render_journal_line) whose
//                     metrics are bit-identical to an in-process
//                     run_scenario of the same config.
// The parent classifies the child's fate via waitpid: signal death ->
// kCrashed, wall-clock watchdog expiry -> SIGKILL + kTimeout, nonzero
// exit or protocol breakage -> kFailed.
#pragma once

#include <cstdio>
#include <string>

#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"

namespace gttsch::campaign {

/// Everything a child process needs to execute one job and label its
/// result: the grid identity plus the full resolved config (including the
/// per-job seed).
struct JobEnvelope {
  std::size_t point_index = 0;
  std::size_t seed_index = 0;
  std::string label;  ///< grid-point label (drives the GTTSCH_CHAOS_POINT hook)
  ScenarioConfig config;
};

/// Renders the envelope as a single JSON line (no trailing newline).
/// Every ScenarioConfig field is serialized exactly: u64 for times (µs)
/// and seeds, %.17g for doubles — unlike apply_field, which parses
/// user-facing seconds and covers only the sweepable fields.
std::string render_job_envelope(const JobEnvelope& envelope);

/// Inverse of render_job_envelope. Returns false (with `error` set when
/// non-null) on malformed input; never throws.
bool parse_job_envelope(const std::string& line, JobEnvelope* out,
                        std::string* error);

/// Parent side: runs one job in a fresh child process (`exec_path` must
/// re-enter this protocol when invoked as `exec_path run-job`). Blocks
/// until the child exits or `timeout_s` wall seconds elapse (then SIGKILL
/// -> kTimeout; timeout_s <= 0 waits forever). Never throws; every
/// failure mode maps to a non-ok JobOutcome with `detail` explaining it.
/// Thread-safe: campaign workers call this concurrently.
JobOutcome run_job_isolated(const std::string& exec_path, double timeout_s,
                            const JobEnvelope& envelope);

/// Child side: reads one envelope line from `in`, runs the scenario, and
/// writes the result record line to `out`. Returns the process exit code
/// (0 ok, 2 malformed envelope, 1 write failure). Honors the test-only
/// GTTSCH_CHAOS_POINT=<label>:<crash|hang> hook before running. Stream
/// parameters (rather than hardwired stdin/stdout) keep it testable via
/// fmemopen/open_memstream.
int run_job_protocol(std::FILE* in, std::FILE* out);

}  // namespace gttsch::campaign
