// RPL-lite: upward-route DODAG formation with an MRHOF/ETX objective
// function — the subset of RFC 6550/6551 the paper's scheduler consumes
// (Rank, parent identity, link ETX), plus the paper's DIO extension
// carrying the sender's free Rx-cell count l^rx.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "mac/tsch_mac.hpp"
#include "net/etx.hpp"
#include "net/trickle.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gttsch {

struct RplConfig {
  /// MinHopRankIncrease; also the paper's MinStepOfRank (Eq 3).
  std::uint16_t min_hop_rank_increase = 256;
  /// Root advertises this rank (Contiki-NG style: ROOT_RANK = MHRI).
  std::uint16_t root_rank = 256;
  /// Hysteresis: switch parents only when the improvement exceeds this
  /// many rank units (Contiki-NG PARENT_SWITCH_THRESHOLD ~ 192).
  std::uint16_t parent_switch_threshold = 192;
  /// Trickle: Imin and number of doublings. The paper's Table II lists a
  /// 300 s DIO ceiling; we reach >= 512 s after doublings (see DESIGN.md).
  TimeUs dio_imin = 4000000;
  int dio_doublings = 7;
  /// Forget DIO candidates not heard from for this long.
  TimeUs neighbor_timeout = 180000000;
  /// DIS solicitation period while associated but not yet joined
  /// (RFC 6550: neighbors reset their trickle on hearing it).
  TimeUs dis_period = 10000000;
  /// Detach from the DODAG (poison + re-solicit) when the preferred
  /// parent's ETX reaches this and no better candidate exists — the
  /// local-repair path for mobility and parent death.
  double parent_detach_etx = 6.0;
};

/// Events the integration layer / scheduling function subscribes to.
class RplCallbacks {
 public:
  virtual ~RplCallbacks() = default;
  virtual void rpl_parent_changed(NodeId old_parent, NodeId new_parent) = 0;
  virtual void rpl_rank_changed(std::uint16_t rank) = 0;
};

class RplAgent {
 public:
  RplAgent(Simulator& sim, TschMac& mac, EtxEstimator& etx, RplConfig config, Rng rng);

  void set_callbacks(RplCallbacks* cb) { callbacks_ = cb; }

  /// The scheduler provides the l^rx value advertised in DIOs (the paper's
  /// new DIO option). Nullable — defaults to 0.
  void set_free_rx_provider(std::function<std::uint16_t()> provider);

  /// Become DODAG root: rank = root_rank, begin DIO trickle.
  void start_as_root();

  /// Non-root start: wait for DIOs (MAC must be associated to hear them).
  void start();

  /// Feed an incoming DIO (dispatched by the Node layer).
  void on_dio(const Frame& frame);

  /// Feed an incoming DIS: a neighbor wants DIOs soon (trickle reset).
  void on_dis(const Frame& frame);

  /// Start soliciting DIOs (call when the MAC associates; stops itself
  /// once joined). No-op for roots.
  void start_soliciting();

  /// Feed unicast transmission outcomes so ETX (and thus rank) updates.
  void on_tx_result(NodeId dst, bool acked, int attempts);

  bool is_root() const { return is_root_; }
  bool joined() const { return is_root_ || parent_ != kNoNode; }
  NodeId parent() const { return parent_; }
  NodeId dodag_root() const { return dodag_root_; }
  std::uint16_t rank() const { return rank_; }
  std::uint16_t min_hop_rank_increase() const { return config_.min_hop_rank_increase; }
  std::uint16_t root_rank() const { return config_.root_rank; }

  /// DAG hop depth implied by rank (join priority for EBs).
  std::uint8_t hops() const;

  /// Parent's advertised free Rx cells, from its latest DIO (l^rx_{p_i}).
  std::uint16_t parent_free_rx() const;

  /// Latest advertised rank of a neighbor (for diagnostics/tests).
  std::optional<std::uint16_t> neighbor_rank(NodeId nbr) const;

  /// The scheduler signals that an advertised metric (e.g. the free-Rx DIO
  /// option) changed materially; shrinks the trickle interval so
  /// neighbors learn soon.
  void notify_metric_changed();

  const RplConfig& config() const { return config_; }

 private:
  struct Candidate {
    std::uint16_t rank = 0xFFFF;
    std::uint16_t free_rx = 0;
    NodeId dodag_root = kNoNode;
    TimeUs last_heard = 0;
  };

  void send_dio();
  void evaluate_parent();
  double path_cost(NodeId cand) const;
  void set_rank(std::uint16_t rank);
  /// Leave the DODAG: poison (INFINITE_RANK DIO), clear the parent, and
  /// resume DIS solicitation.
  void detach();

  Simulator& sim_;
  TschMac& mac_;
  EtxEstimator& etx_;
  RplConfig config_;
  Rng rng_;
  RplCallbacks* callbacks_ = nullptr;
  std::function<std::uint16_t()> free_rx_provider_;

  bool is_root_ = false;
  bool started_ = false;
  NodeId parent_ = kNoNode;
  NodeId dodag_root_ = kNoNode;
  std::uint16_t rank_ = 0xFFFF;
  std::map<NodeId, Candidate> candidates_;
  TrickleTimer dio_trickle_;
  PeriodicTimer dis_timer_;
};

}  // namespace gttsch
