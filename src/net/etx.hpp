// Expected Transmission Count estimation (Eq 4 of the paper: ETX = 1/PRR),
// maintained per neighbor as an EWMA over observed transmission outcomes.
#pragma once

#include <map>

#include "util/types.hpp"

namespace gttsch {

class EtxEstimator {
 public:
  /// `alpha` is the EWMA memory (Contiki-NG uses 0.9); a failed delivery
  /// (retry budget exhausted) contributes `fail_penalty` attempts.
  explicit EtxEstimator(double alpha = 0.9, double fail_penalty = 8.0);

  /// Record the outcome of one unicast MAC transaction toward `nbr`:
  /// `attempts` transmissions, ultimately acked or not.
  void record(NodeId nbr, bool acked, int attempts);

  /// Current ETX estimate; optimistic 1.0 for unknown neighbors.
  double etx(NodeId nbr) const;

  /// Implied packet reception ratio (PRR = 1/ETX).
  double prr(NodeId nbr) const { return 1.0 / etx(nbr); }

  bool has_estimate(NodeId nbr) const { return values_.count(nbr) > 0; }
  void forget(NodeId nbr) { values_.erase(nbr); }
  std::size_t tracked_neighbors() const { return values_.size(); }

 private:
  double alpha_;
  double fail_penalty_;
  std::map<NodeId, double> values_;
};

}  // namespace gttsch
