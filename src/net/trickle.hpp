// RFC 6206 Trickle timer (redundancy suppression omitted: k = infinity,
// appropriate for the paper's small DODAGs).
#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace gttsch {

class TrickleTimer {
 public:
  TrickleTimer(Simulator& sim, Rng rng, TimeUs imin, int doublings,
               std::function<void()> fire);

  /// Begin with I = Imin (also restarts a running timer).
  void start();

  /// Inconsistency observed: shrink the interval back to Imin.
  void reset();

  void stop();
  bool running() const { return running_; }
  TimeUs current_interval() const { return interval_; }

 private:
  void begin_interval();

  Simulator& sim_;
  Rng rng_;
  TimeUs imin_;
  TimeUs imax_;
  TimeUs interval_ = 0;
  bool running_ = false;
  std::function<void()> fire_;
  OneShotTimer fire_timer_;
  OneShotTimer interval_timer_;
};

}  // namespace gttsch
