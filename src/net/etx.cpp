#include "net/etx.hpp"

#include <algorithm>

namespace gttsch {

EtxEstimator::EtxEstimator(double alpha, double fail_penalty)
    : alpha_(std::clamp(alpha, 0.0, 1.0)), fail_penalty_(std::max(1.0, fail_penalty)) {}

void EtxEstimator::record(NodeId nbr, bool acked, int attempts) {
  const double sample = acked ? static_cast<double>(std::max(1, attempts)) : fail_penalty_;
  const auto it = values_.find(nbr);
  if (it == values_.end()) {
    values_[nbr] = sample;
    return;
  }
  it->second = alpha_ * it->second + (1.0 - alpha_) * sample;
}

double EtxEstimator::etx(NodeId nbr) const {
  const auto it = values_.find(nbr);
  return it == values_.end() ? 1.0 : std::max(1.0, it->second);
}

}  // namespace gttsch
