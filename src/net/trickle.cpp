#include "net/trickle.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

TrickleTimer::TrickleTimer(Simulator& sim, Rng rng, TimeUs imin, int doublings,
                           std::function<void()> fire)
    : sim_(sim),
      rng_(rng),
      imin_(imin),
      imax_(imin << std::max(0, doublings)),
      fire_(std::move(fire)),
      fire_timer_(sim),
      interval_timer_(sim) {
  GTTSCH_CHECK(imin > 0);
}

void TrickleTimer::start() {
  running_ = true;
  interval_ = imin_;
  begin_interval();
}

void TrickleTimer::reset() {
  if (!running_) {
    start();
    return;
  }
  if (interval_ != imin_) {
    interval_ = imin_;
    begin_interval();
  }
}

void TrickleTimer::stop() {
  running_ = false;
  fire_timer_.stop();
  interval_timer_.stop();
}

void TrickleTimer::begin_interval() {
  // Fire once at a random point in [I/2, I); then double.
  const TimeUs half = interval_ / 2;
  const TimeUs t =
      half + static_cast<TimeUs>(rng_.uniform(static_cast<std::uint64_t>(interval_ - half)));
  fire_timer_.start(t, [this] {
    if (fire_) fire_();
  });
  interval_timer_.start(interval_, [this] {
    interval_ = std::min(interval_ * 2, imax_);
    begin_interval();
  });
}

}  // namespace gttsch
