#include "net/rpl.hpp"

#include <algorithm>
#include <cmath>

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

RplAgent::RplAgent(Simulator& sim, TschMac& mac, EtxEstimator& etx, RplConfig config, Rng rng)
    : sim_(sim),
      mac_(mac),
      etx_(etx),
      config_(config),
      rng_(rng),
      dio_trickle_(sim, rng.fork(0x0D10), config.dio_imin, config.dio_doublings,
                   [this] { send_dio(); }),
      dis_timer_(sim) {}

void RplAgent::set_free_rx_provider(std::function<std::uint16_t()> provider) {
  free_rx_provider_ = std::move(provider);
}

void RplAgent::start_as_root() {
  is_root_ = true;
  started_ = true;
  dodag_root_ = mac_.id();
  set_rank(config_.root_rank);
  dio_trickle_.start();
}

void RplAgent::start() { started_ = true; }

std::uint8_t RplAgent::hops() const {
  if (rank_ == 0xFFFF) return 0xFF;
  const std::uint32_t above_root = rank_ - std::min<std::uint16_t>(rank_, config_.root_rank);
  const std::uint32_t h =
      (above_root + config_.min_hop_rank_increase / 2) / config_.min_hop_rank_increase;
  return static_cast<std::uint8_t>(std::min<std::uint32_t>(h, 0xFE));
}

std::uint16_t RplAgent::parent_free_rx() const {
  const auto it = candidates_.find(parent_);
  return it == candidates_.end() ? 0 : it->second.free_rx;
}

std::optional<std::uint16_t> RplAgent::neighbor_rank(NodeId nbr) const {
  const auto it = candidates_.find(nbr);
  if (it == candidates_.end()) return std::nullopt;
  return it->second.rank;
}

void RplAgent::send_dio() {
  if (!joined() || rank_ == 0xFFFF) return;
  DioPayload dio;
  dio.dodag_root = dodag_root_;
  dio.rank = rank_;
  dio.min_hop_rank_increase = config_.min_hop_rank_increase;
  dio.free_rx_cells = free_rx_provider_ ? free_rx_provider_() : 0;
  mac_.enqueue(make_dio_frame(mac_.id(), dio));
}

void RplAgent::start_soliciting() {
  if (is_root_ || joined()) return;
  // Randomized per-tick jitter (RFC 6550 DIS behavior): without it, two
  // soliciting nodes phase-lock into the same broadcast slot and their
  // DIS frames collide at the common neighbor indefinitely.
  dis_timer_.start(0, config_.dis_period,
                   [this] {
                     if (joined()) {
                       dis_timer_.stop();
                       return;
                     }
                     mac_.enqueue(make_dis_frame(mac_.id()));
                   },
                   &rng_, config_.dis_period / 2);
}

void RplAgent::on_dis(const Frame&) {
  // A neighbor is soliciting: make our next DIO prompt again.
  if (joined()) dio_trickle_.reset();
}

void RplAgent::on_dio(const Frame& frame) {
  if (!started_ || is_root_) return;
  const DioPayload& dio = frame.as<DioPayload>();
  // Single-instance RPL: once in a DODAG, ignore DIOs from other roots.
  if (dodag_root_ != kNoNode && dio.dodag_root != dodag_root_) return;
  Candidate& cand = candidates_[frame.src];
  cand.rank = dio.rank;
  cand.free_rx = dio.free_rx_cells;
  cand.dodag_root = dio.dodag_root;
  cand.last_heard = sim_.now();
  evaluate_parent();
}

void RplAgent::on_tx_result(NodeId dst, bool acked, int attempts) {
  etx_.record(dst, acked, attempts);
  if (!is_root_ && dst == parent_) evaluate_parent();
}

double RplAgent::path_cost(NodeId cand) const {
  const auto it = candidates_.find(cand);
  if (it == candidates_.end()) return 1e18;
  // MRHOF with the ETX metric: advertised rank + ETX * MinHopRankIncrease.
  return static_cast<double>(it->second.rank) +
         etx_.etx(cand) * static_cast<double>(config_.min_hop_rank_increase);
}

void RplAgent::evaluate_parent() {
  // Age out silent candidates (but never the current parent purely by age:
  // its ETX penalty already reflects delivery failures).
  const TimeUs now = sim_.now();
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    if (it->first != parent_ && now - it->second.last_heard > config_.neighbor_timeout)
      it = candidates_.erase(it);
    else
      ++it;
  }

  NodeId best = kNoNode;
  double best_cost = 1e18;
  for (const auto& [id, cand] : candidates_) {
    // Loop avoidance: never consider a candidate advertising a rank at or
    // above our own current rank (unless we have no rank yet).
    if (rank_ != 0xFFFF && parent_ != kNoNode && cand.rank >= rank_) continue;
    if (cand.rank == 0xFFFF) continue;  // poisoned (detached neighbor)
    const double cost = path_cost(id);
    if (cost >= 65535.0) continue;
    if (cost < best_cost) {
      best_cost = cost;
      best = id;
    }
  }

  // Local repair: the preferred parent is effectively dead (ETX at the
  // detach threshold or it poisoned itself) and nothing better is known.
  if (parent_ != kNoNode) {
    const auto pit = candidates_.find(parent_);
    const bool poisoned = pit != candidates_.end() && pit->second.rank == 0xFFFF;
    const bool dead_link = etx_.etx(parent_) >= config_.parent_detach_etx;
    if ((poisoned || dead_link) && (best == kNoNode || best == parent_)) {
      detach();
      return;
    }
  }
  if (best == kNoNode) return;

  const double current_cost = parent_ == kNoNode ? 1e18 : path_cost(parent_);
  const bool switch_parent =
      parent_ == kNoNode ||
      best_cost + static_cast<double>(config_.parent_switch_threshold) < current_cost;

  const NodeId chosen = switch_parent ? best : parent_;
  const double chosen_cost = switch_parent ? best_cost : current_cost;

  if (chosen != parent_) {
    const NodeId old = parent_;
    parent_ = chosen;
    dodag_root_ = candidates_[chosen].dodag_root;
    GTTSCH_LOG_INFO("rpl", "node %u parent %u -> %u", mac_.id(), old, chosen);
    set_rank(static_cast<std::uint16_t>(std::lround(std::min(chosen_cost, 65534.0))));
    dio_trickle_.reset();
    if (!dio_trickle_.running()) dio_trickle_.start();
    if (callbacks_ != nullptr) callbacks_->rpl_parent_changed(old, chosen);
  } else {
    // Same parent; refresh rank as ETX drifts.
    set_rank(static_cast<std::uint16_t>(std::lround(std::min(chosen_cost, 65534.0))));
  }
}

void RplAgent::detach() {
  const NodeId old = parent_;
  GTTSCH_LOG_INFO("rpl", "node %u detaching from parent %u (local repair)", mac_.id(), old);
  // Poison: tell descendants we no longer provide a route (RFC 6550).
  DioPayload poison;
  poison.dodag_root = dodag_root_;
  poison.rank = 0xFFFF;
  poison.min_hop_rank_increase = config_.min_hop_rank_increase;
  mac_.enqueue(make_dio_frame(mac_.id(), poison));
  dio_trickle_.stop();
  parent_ = kNoNode;
  rank_ = 0xFFFF;
  candidates_.erase(old);
  etx_.forget(old);
  if (callbacks_ != nullptr) callbacks_->rpl_parent_changed(old, kNoNode);
  start_soliciting();
}

void RplAgent::notify_metric_changed() {
  if (dio_trickle_.running()) dio_trickle_.reset();
}

void RplAgent::set_rank(std::uint16_t rank) {
  if (rank == rank_) return;
  const bool significant =
      rank_ == 0xFFFF ||
      std::abs(static_cast<int>(rank) - static_cast<int>(rank_)) >
          static_cast<int>(config_.min_hop_rank_increase) / 2;
  rank_ = rank;
  if (callbacks_ != nullptr) callbacks_->rpl_rank_changed(rank);
  if (significant && dio_trickle_.running()) dio_trickle_.reset();
}

}  // namespace gttsch
