#include "mac/schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

Slotframe::Slotframe(std::uint16_t handle, std::uint16_t length)
    : handle_(handle), length_(length), by_slot_(length) {
  GTTSCH_CHECK(length > 0);
}

void Slotframe::notify_owner() {
  if (owner_ != nullptr) owner_->on_mutated();
}

bool Slotframe::add(const Cell& cell) {
  GTTSCH_CHECK(cell.slot_offset < length_);
  auto& bucket = by_slot_[cell.slot_offset];
  if (std::find(bucket.begin(), bucket.end(), cell) != bucket.end()) return false;
  bucket.push_back(cell);
  ++size_;
  notify_owner();
  return true;
}

bool Slotframe::remove(const Cell& cell) {
  if (cell.slot_offset >= length_) return false;
  auto& bucket = by_slot_[cell.slot_offset];
  const auto it = std::find(bucket.begin(), bucket.end(), cell);
  if (it == bucket.end()) return false;
  bucket.erase(it);
  --size_;
  notify_owner();
  return true;
}

std::size_t Slotframe::remove_if(const std::function<bool(const Cell&)>& pred) {
  std::size_t removed = 0;
  for (auto& bucket : by_slot_) {
    const auto before = bucket.size();
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(), pred), bucket.end());
    removed += before - bucket.size();
  }
  size_ -= removed;
  if (removed > 0) notify_owner();
  return removed;
}

const std::vector<Cell>& Slotframe::cells_at(std::uint16_t slot) const {
  static const std::vector<Cell> kEmpty;
  if (slot >= length_) return kEmpty;
  return by_slot_[slot];
}

std::vector<Cell> Slotframe::all_cells() const {
  std::vector<Cell> out;
  out.reserve(size_);
  for (const auto& bucket : by_slot_) out.insert(out.end(), bucket.begin(), bucket.end());
  return out;
}

std::vector<std::uint16_t> Slotframe::free_slots() const {
  std::vector<std::uint16_t> out;
  for (std::uint16_t s = 0; s < length_; ++s)
    if (by_slot_[s].empty()) out.push_back(s);
  return out;
}

Slotframe& TschSchedule::add_slotframe(std::uint16_t handle, std::uint16_t length) {
  const auto [it, inserted] = frames_.try_emplace(handle, handle, length);
  GTTSCH_CHECK(inserted);
  it->second.owner_ = this;
  on_mutated();
  return it->second;
}

void TschSchedule::remove_slotframe(std::uint16_t handle) {
  if (frames_.erase(handle) > 0) on_mutated();
}

Slotframe* TschSchedule::get(std::uint16_t handle) {
  const auto it = frames_.find(handle);
  return it == frames_.end() ? nullptr : &it->second;
}

const Slotframe* TschSchedule::get(std::uint16_t handle) const {
  const auto it = frames_.find(handle);
  return it == frames_.end() ? nullptr : &it->second;
}

void TschSchedule::on_mutated() {
  ++version_;
  table_dirty_ = true;
  if (change_listener_) change_listener_();
}

void TschSchedule::set_change_listener(std::function<void()> listener) {
  change_listener_ = std::move(listener);
}

void TschSchedule::ensure_table() const {
  if (!table_dirty_) return;
  table_.clear();
  table_.reserve(frames_.size());
  for (const auto& [handle, sf] : frames_) {
    (void)handle;
    FrameTable t;
    t.length = sf.length();
    for (std::uint16_t s = 0; s < sf.length(); ++s)
      if (!sf.by_slot_[s].empty()) t.occupied.push_back(s);
    table_.push_back(std::move(t));
  }
  table_dirty_ = false;
}

Asn TschSchedule::next_active_asn(Asn after) const {
  ensure_table();
  Asn best = kNoActiveAsn;
  const Asn base = after + 1;
  for (const FrameTable& t : table_) {
    if (t.occupied.empty()) continue;
    const auto slot = static_cast<std::uint16_t>(base % t.length);
    const auto it = std::lower_bound(t.occupied.begin(), t.occupied.end(), slot);
    Asn candidate;
    if (it != t.occupied.end()) {
      candidate = base + (*it - slot);
    } else {
      // Wrap to the first occupied slot of the next slotframe cycle.
      candidate = base + (t.length - slot) + t.occupied.front();
    }
    best = std::min(best, candidate);
  }
  return best;
}

std::vector<TschSchedule::ActiveCell> TschSchedule::active_cells(Asn asn) const {
  std::vector<ActiveCell> out;
  active_cells_into(asn, out);
  return out;
}

void TschSchedule::active_cells_into(Asn asn, std::vector<ActiveCell>& out) const {
  out.clear();
  for (const auto& [handle, sf] : frames_) {
    const auto slot = static_cast<std::uint16_t>(asn % sf.length());
    for (const Cell& c : sf.cells_at(slot)) out.emplace_back(handle, c);
  }
}

std::size_t TschSchedule::total_cells() const {
  std::size_t n = 0;
  for (const auto& [_, sf] : frames_) n += sf.size();
  return n;
}

void TschSchedule::for_each(const std::function<void(Slotframe&)>& fn) {
  for (auto& [_, sf] : frames_) fn(sf);
}

void TschSchedule::for_each(const std::function<void(const Slotframe&)>& fn) const {
  for (const auto& [_, sf] : frames_) fn(sf);
}

}  // namespace gttsch
