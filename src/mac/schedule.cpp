#include "mac/schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

Slotframe::Slotframe(std::uint16_t handle, std::uint16_t length)
    : handle_(handle), length_(length), by_slot_(length) {
  GTTSCH_CHECK(length > 0);
}

bool Slotframe::add(const Cell& cell) {
  GTTSCH_CHECK(cell.slot_offset < length_);
  auto& bucket = by_slot_[cell.slot_offset];
  if (std::find(bucket.begin(), bucket.end(), cell) != bucket.end()) return false;
  bucket.push_back(cell);
  ++size_;
  return true;
}

bool Slotframe::remove(const Cell& cell) {
  if (cell.slot_offset >= length_) return false;
  auto& bucket = by_slot_[cell.slot_offset];
  const auto it = std::find(bucket.begin(), bucket.end(), cell);
  if (it == bucket.end()) return false;
  bucket.erase(it);
  --size_;
  return true;
}

std::size_t Slotframe::remove_if(const std::function<bool(const Cell&)>& pred) {
  std::size_t removed = 0;
  for (auto& bucket : by_slot_) {
    const auto before = bucket.size();
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(), pred), bucket.end());
    removed += before - bucket.size();
  }
  size_ -= removed;
  return removed;
}

const std::vector<Cell>& Slotframe::cells_at(std::uint16_t slot) const {
  static const std::vector<Cell> kEmpty;
  if (slot >= length_) return kEmpty;
  return by_slot_[slot];
}

std::vector<Cell> Slotframe::all_cells() const {
  std::vector<Cell> out;
  out.reserve(size_);
  for (const auto& bucket : by_slot_) out.insert(out.end(), bucket.begin(), bucket.end());
  return out;
}

std::vector<std::uint16_t> Slotframe::free_slots() const {
  std::vector<std::uint16_t> out;
  for (std::uint16_t s = 0; s < length_; ++s)
    if (by_slot_[s].empty()) out.push_back(s);
  return out;
}

Slotframe& TschSchedule::add_slotframe(std::uint16_t handle, std::uint16_t length) {
  const auto [it, inserted] = frames_.try_emplace(handle, handle, length);
  GTTSCH_CHECK(inserted);
  return it->second;
}

void TschSchedule::remove_slotframe(std::uint16_t handle) { frames_.erase(handle); }

Slotframe* TschSchedule::get(std::uint16_t handle) {
  const auto it = frames_.find(handle);
  return it == frames_.end() ? nullptr : &it->second;
}

const Slotframe* TschSchedule::get(std::uint16_t handle) const {
  const auto it = frames_.find(handle);
  return it == frames_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::uint16_t, Cell>> TschSchedule::active_cells(Asn asn) const {
  std::vector<std::pair<std::uint16_t, Cell>> out;
  for (const auto& [handle, sf] : frames_) {
    const auto slot = static_cast<std::uint16_t>(asn % sf.length());
    for (const Cell& c : sf.cells_at(slot)) out.emplace_back(handle, c);
  }
  return out;
}

std::size_t TschSchedule::total_cells() const {
  std::size_t n = 0;
  for (const auto& [_, sf] : frames_) n += sf.size();
  return n;
}

void TschSchedule::for_each(const std::function<void(Slotframe&)>& fn) {
  for (auto& [_, sf] : frames_) fn(sf);
}

void TschSchedule::for_each(const std::function<void(const Slotframe&)>& fn) const {
  for (const auto& [_, sf] : frames_) fn(sf);
}

}  // namespace gttsch
