#include "mac/txqueue.hpp"

#include <algorithm>

namespace gttsch {

TxQueues::TxQueues(std::size_t data_capacity, std::size_t control_capacity_per_queue)
    : data_capacity_(data_capacity), control_capacity_(control_capacity_per_queue) {}

bool TxQueues::enqueue_unicast(NodeId neighbor, FramePtr frame, std::uint32_t mac_seq,
                               TimeUs now) {
  NeighborQueue& q = ensure_queue(neighbor);
  if (is_data(frame)) {
    if (data_queued_ >= data_capacity_) return false;
    ++data_queued_;
  } else {
    const std::size_t control_count = static_cast<std::size_t>(
        std::count_if(q.packets.begin(), q.packets.end(),
                      [](const QueuedPacket& p) { return p.frame->type != FrameType::kData; }));
    if (control_count >= control_capacity_) return false;
  }
  q.packets.push_back(QueuedPacket{std::move(frame), mac_seq, 0, now});
  return true;
}

bool TxQueues::enqueue_broadcast(FramePtr frame, std::uint32_t mac_seq, TimeUs now) {
  if (broadcast_.packets.size() >= control_capacity_) return false;
  broadcast_.packets.push_back(QueuedPacket{std::move(frame), mac_seq, 0, now});
  return true;
}

QueuedPacket* TxQueues::peek_unicast(NodeId neighbor) {
  const auto it = unicast_.find(neighbor);
  if (it == unicast_.end() || it->second.packets.empty()) return nullptr;
  return &it->second.packets.front();
}

QueuedPacket* TxQueues::peek_broadcast() {
  return broadcast_.packets.empty() ? nullptr : &broadcast_.packets.front();
}

void TxQueues::pop_unicast(NodeId neighbor) {
  const auto it = unicast_.find(neighbor);
  if (it == unicast_.end() || it->second.packets.empty()) return;
  if (is_data(it->second.packets.front().frame)) --data_queued_;
  it->second.packets.pop_front();
}

void TxQueues::pop_broadcast() {
  if (!broadcast_.packets.empty()) broadcast_.packets.pop_front();
}

NeighborQueue* TxQueues::queue_for(NodeId neighbor) {
  const auto it = unicast_.find(neighbor);
  return it == unicast_.end() ? nullptr : &it->second;
}

NeighborQueue& TxQueues::ensure_queue(NodeId neighbor) { return unicast_[neighbor]; }

std::vector<NodeId> TxQueues::backlogged_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [id, q] : unicast_)
    if (!q.packets.empty()) out.push_back(id);
  return out;
}

std::optional<NodeId> TxQueues::any_backlogged() const {
  for (const auto& [id, q] : unicast_)
    if (!q.packets.empty()) return id;
  return std::nullopt;
}

std::optional<NodeId> TxQueues::pick_any_unicast_shared() {
  if (unicast_.empty()) return std::nullopt;
  // Round-robin scan starting after rr_cursor_; queues in backoff consume
  // one shared-cell opportunity instead of transmitting.
  std::vector<std::map<NodeId, NeighborQueue>::iterator> order;
  order.reserve(unicast_.size());
  auto start = unicast_.upper_bound(rr_cursor_);
  for (auto it = start; it != unicast_.end(); ++it) order.push_back(it);
  for (auto it = unicast_.begin(); it != start; ++it) order.push_back(it);

  std::optional<NodeId> chosen;
  for (auto& it : order) {
    NeighborQueue& q = it->second;
    if (q.packets.empty()) continue;
    if (q.backoff_window > 0) {
      --q.backoff_window;
      continue;
    }
    if (!chosen) {
      chosen = it->first;
      rr_cursor_ = it->first;
    }
  }
  return chosen;
}

std::size_t TxQueues::total_queued() const {
  std::size_t n = broadcast_.packets.size();
  for (const auto& [_, q] : unicast_) n += q.packets.size();
  return n;
}

std::size_t TxQueues::retarget(NodeId from, NodeId to) {
  const auto it = unicast_.find(from);
  if (it == unicast_.end() || from == to) return 0;
  NeighborQueue& src = it->second;
  NeighborQueue& dst = ensure_queue(to);
  std::size_t moved = 0;
  for (auto& pkt : src.packets) {
    if (is_data(pkt.frame)) {
      // Rewrite the MAC destination to the new parent.
      Frame f = *pkt.frame;
      f.dst = to;
      pkt.frame = std::make_shared<const Frame>(std::move(f));
      pkt.attempts = 0;
      dst.packets.push_back(std::move(pkt));
      ++moved;
    }
  }
  // Dropped control frames reduce nothing in the data counter.
  unicast_.erase(it);
  return moved;
}

std::size_t TxQueues::drop_queue(NodeId neighbor) {
  const auto it = unicast_.find(neighbor);
  if (it == unicast_.end()) return 0;
  std::size_t dropped = it->second.packets.size();
  for (const auto& pkt : it->second.packets)
    if (is_data(pkt.frame)) --data_queued_;
  unicast_.erase(it);
  return dropped;
}

}  // namespace gttsch
