// The TSCH schedule: one or more slotframes holding cells of the CDU matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "phy/wire.hpp"
#include "util/types.hpp"

namespace gttsch {

class Slotframe {
 public:
  Slotframe(std::uint16_t handle, std::uint16_t length);

  std::uint16_t handle() const { return handle_; }
  std::uint16_t length() const { return length_; }
  std::size_t size() const { return size_; }

  /// Adds a cell; multiple cells may share a slot offset (distinct channel
  /// offsets). Returns false if the exact cell already exists.
  bool add(const Cell& cell);

  /// Removes an exactly-matching cell. Returns true if found.
  bool remove(const Cell& cell);

  /// Removes all cells matching `pred`; returns removed count.
  std::size_t remove_if(const std::function<bool(const Cell&)>& pred);

  const std::vector<Cell>& cells_at(std::uint16_t slot) const;

  /// All cells in slot order (flattened copy).
  std::vector<Cell> all_cells() const;

  /// Slot offsets with no cell at all.
  std::vector<std::uint16_t> free_slots() const;

  bool slot_in_use(std::uint16_t slot) const { return !by_slot_[slot].empty(); }

 private:
  std::uint16_t handle_;
  std::uint16_t length_;
  std::vector<std::vector<Cell>> by_slot_;
  std::size_t size_ = 0;
};

/// A node's full schedule: slotframes keyed (and prioritised) by handle.
class TschSchedule {
 public:
  Slotframe& add_slotframe(std::uint16_t handle, std::uint16_t length);
  void remove_slotframe(std::uint16_t handle);
  Slotframe* get(std::uint16_t handle);
  const Slotframe* get(std::uint16_t handle) const;

  bool empty() const { return frames_.empty(); }
  std::size_t slotframe_count() const { return frames_.size(); }

  /// Active cells at `asn` across all slotframes, ordered by slotframe
  /// handle (ascending = higher priority first, per Contiki-NG convention).
  /// Each entry is (slotframe handle, cell).
  std::vector<std::pair<std::uint16_t, Cell>> active_cells(Asn asn) const;

  /// Total number of cells across slotframes.
  std::size_t total_cells() const;

  /// Visit every slotframe in handle order.
  void for_each(const std::function<void(Slotframe&)>& fn);
  void for_each(const std::function<void(const Slotframe&)>& fn) const;

 private:
  std::map<std::uint16_t, Slotframe> frames_;
};

}  // namespace gttsch
