// The TSCH schedule: one or more slotframes holding cells of the CDU matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "phy/wire.hpp"
#include "util/types.hpp"

namespace gttsch {

class TschSchedule;

class Slotframe {
 public:
  Slotframe(std::uint16_t handle, std::uint16_t length);
  // Non-copyable: a copy would carry the owner_ backpointer and notify
  // (or dangle into) the original schedule on mutation.
  Slotframe(const Slotframe&) = delete;
  Slotframe& operator=(const Slotframe&) = delete;

  std::uint16_t handle() const { return handle_; }
  std::uint16_t length() const { return length_; }
  std::size_t size() const { return size_; }

  /// Adds a cell; multiple cells may share a slot offset (distinct channel
  /// offsets). Returns false if the exact cell already exists.
  bool add(const Cell& cell);

  /// Removes an exactly-matching cell. Returns true if found.
  bool remove(const Cell& cell);

  /// Removes all cells matching `pred`; returns removed count.
  std::size_t remove_if(const std::function<bool(const Cell&)>& pred);

  const std::vector<Cell>& cells_at(std::uint16_t slot) const;

  /// All cells in slot order (flattened copy).
  std::vector<Cell> all_cells() const;

  /// Slot offsets with no cell at all.
  std::vector<std::uint16_t> free_slots() const;

  bool slot_in_use(std::uint16_t slot) const { return !by_slot_[slot].empty(); }

 private:
  friend class TschSchedule;
  void notify_owner();

  std::uint16_t handle_;
  std::uint16_t length_;
  std::vector<std::vector<Cell>> by_slot_;
  std::size_t size_ = 0;
  TschSchedule* owner_ = nullptr;  ///< set when owned by a TschSchedule
};

/// A node's full schedule: slotframes keyed (and prioritised) by handle.
///
/// Beyond the cell containers, the schedule maintains a compiled timetable
/// — per slotframe, the sorted list of occupied slot offsets — rebuilt
/// (lazily) whenever any cell or slotframe is added or removed. The MAC
/// fast path uses it to jump directly to the next ASN holding at least one
/// cell instead of waking on every slot, and registers a change listener so
/// mid-run 6P/RPL schedule edits re-aim an already-armed wakeup.
class TschSchedule {
 public:
  TschSchedule() = default;
  // Non-copyable: the change listener captures the owning MAC and the
  // slotframes' owner backpointers reference this object.
  TschSchedule(const TschSchedule&) = delete;
  TschSchedule& operator=(const TschSchedule&) = delete;

  using ActiveCell = std::pair<std::uint16_t, Cell>;

  /// Returned by next_active_asn when no slotframe holds any cell.
  static constexpr Asn kNoActiveAsn = std::numeric_limits<Asn>::max();

  Slotframe& add_slotframe(std::uint16_t handle, std::uint16_t length);
  void remove_slotframe(std::uint16_t handle);
  Slotframe* get(std::uint16_t handle);
  const Slotframe* get(std::uint16_t handle) const;

  bool empty() const { return frames_.empty(); }
  std::size_t slotframe_count() const { return frames_.size(); }

  /// Active cells at `asn` across all slotframes, ordered by slotframe
  /// handle (ascending = higher priority first, per Contiki-NG convention).
  /// Each entry is (slotframe handle, cell).
  std::vector<ActiveCell> active_cells(Asn asn) const;

  /// Allocation-free variant: fills `out` (cleared first) with the same
  /// contents as active_cells. The steady-state slot loop reuses one
  /// scratch vector so no allocation happens once its capacity settles.
  void active_cells_into(Asn asn, std::vector<ActiveCell>& out) const;

  /// Smallest ASN strictly greater than `after` whose slot holds at least
  /// one cell in any slotframe, or kNoActiveAsn when every slotframe is
  /// empty. This is the Contiki-NG `tsch_schedule_get_next_active_link`
  /// discipline: idle slots are never visited.
  Asn next_active_asn(Asn after) const;

  /// Total number of cells across slotframes.
  std::size_t total_cells() const;

  /// Bumped on every mutation (cell or slotframe add/remove).
  std::uint64_t version() const { return version_; }

  /// Invoked (synchronously) after every mutation; one listener only —
  /// the owning MAC uses it to re-aim its next-active-slot wakeup.
  void set_change_listener(std::function<void()> listener);

  /// Visit every slotframe in handle order.
  void for_each(const std::function<void(Slotframe&)>& fn);
  void for_each(const std::function<void(const Slotframe&)>& fn) const;

 private:
  friend class Slotframe;
  void on_mutated();
  void ensure_table() const;

  /// Compiled timetable entry: one slotframe's occupied slot offsets.
  struct FrameTable {
    std::uint16_t length = 0;
    std::vector<std::uint16_t> occupied;  ///< sorted, slots with >=1 cell
  };

  std::map<std::uint16_t, Slotframe> frames_;
  std::uint64_t version_ = 0;
  std::function<void()> change_listener_;
  mutable std::vector<FrameTable> table_;
  mutable bool table_dirty_ = true;
};

}  // namespace gttsch
