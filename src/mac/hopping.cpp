#include "mac/hopping.hpp"

#include "util/check.hpp"

namespace gttsch {

HoppingSequence::HoppingSequence() : seq_{17, 23, 15, 25, 19, 11, 13, 21} {}

HoppingSequence::HoppingSequence(std::vector<PhysChannel> seq) : seq_(std::move(seq)) {
  GTTSCH_CHECK(!seq_.empty());
}

PhysChannel HoppingSequence::channel_for(Asn asn, ChannelOffset offset) const {
  return seq_[static_cast<std::size_t>((asn + offset) % seq_.size())];
}

}  // namespace gttsch
