// Transmit queues: one FIFO per unicast neighbor plus one broadcast FIFO.
//
// Data-frame occupancy is capped across all unicast queues (the node-level
// queue length q_i of the paper); control frames have small per-queue caps
// so congestion cannot starve signalling.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "phy/wire.hpp"
#include "util/types.hpp"

namespace gttsch {

struct QueuedPacket {
  FramePtr frame;
  std::uint32_t mac_seq = 0;
  int attempts = 0;  ///< transmission attempts so far
  TimeUs enqueued_at = 0;
};

/// Per-neighbor queue with TSCH shared-cell backoff state.
struct NeighborQueue {
  std::deque<QueuedPacket> packets;
  int backoff_exponent = 0;  ///< current BE (0 = no backoff pending)
  int backoff_window = 0;    ///< shared-cell opportunities left to skip
};

class TxQueues {
 public:
  TxQueues(std::size_t data_capacity, std::size_t control_capacity_per_queue);

  /// Enqueue toward a unicast neighbor. Returns false (drop) when the data
  /// cap (for kData) or the per-queue control cap is hit.
  bool enqueue_unicast(NodeId neighbor, FramePtr frame, std::uint32_t mac_seq, TimeUs now);

  /// Enqueue a broadcast control frame (EB is built on the fly, not queued).
  bool enqueue_broadcast(FramePtr frame, std::uint32_t mac_seq, TimeUs now);

  /// Head-of-line packet for a neighbor; nullptr if empty.
  QueuedPacket* peek_unicast(NodeId neighbor);
  QueuedPacket* peek_broadcast();

  void pop_unicast(NodeId neighbor);
  void pop_broadcast();

  NeighborQueue* queue_for(NodeId neighbor);  // nullptr if absent
  NeighborQueue& ensure_queue(NodeId neighbor);

  /// Neighbors with at least one queued packet, in round-robin order
  /// starting after the last neighbor served via pick_any_unicast().
  std::vector<NodeId> backlogged_neighbors() const;

  /// Round-robin pick of a non-empty unicast queue (for shared cells).
  /// Honors backoff: queues with backoff_window > 0 are skipped after
  /// decrementing the window (a shared-cell opportunity passed).
  std::optional<NodeId> pick_any_unicast_shared();

  /// Same, but without consuming backoff (for tests / inspection).
  std::optional<NodeId> any_backlogged() const;

  /// Number of queued kData frames (the paper's q_i).
  std::size_t data_queued() const { return data_queued_; }
  std::size_t data_capacity() const { return data_capacity_; }
  std::size_t broadcast_queued() const { return broadcast_.packets.size(); }
  std::size_t total_queued() const;

  /// Move all *data* frames queued for `from` to the queue of `to`
  /// (RPL parent switch). Control frames for `from` are dropped.
  /// Returns the number of moved frames.
  std::size_t retarget(NodeId from, NodeId to);

  /// Drop everything queued for a neighbor; returns dropped count.
  std::size_t drop_queue(NodeId neighbor);

 private:
  bool is_data(const FramePtr& f) const { return f->type == FrameType::kData; }

  std::size_t data_capacity_;
  std::size_t control_capacity_;
  std::size_t data_queued_ = 0;
  std::map<NodeId, NeighborQueue> unicast_;
  NeighborQueue broadcast_;
  NodeId rr_cursor_ = 0;  ///< round-robin position for shared-cell picks
};

}  // namespace gttsch
