// The TSCH MAC slot engine.
//
// Runs the per-timeslot state machine: cell selection across slotframes,
// frame transmission with ACK + bounded retransmission, shared-cell
// CSMA backoff, Enhanced Beacon emission, and network association by
// EB scanning. Scheduling functions (GT-TSCH, Orchestra) own the schedule
// content; the MAC only executes it.
//
// Fast path: by default the slot timer jumps directly from one *active*
// slot to the next (the schedule's compiled timetable provides
// next_active_asn), so idle slots — the overwhelming majority under sparse
// schedules — cost no simulator event at all. Idle slots touch no RNG and
// no externally visible state, so skipping them is observably identical to
// per-slot stepping; the GTTSCH_FORCE_PER_SLOT environment variable (or
// MacConfig::per_slot_stepping) restores the reference per-slot behaviour,
// which the fast-path equivalence tests compare bit-for-bit.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "mac/hopping.hpp"
#include "mac/schedule.hpp"
#include "mac/slot_timing.hpp"
#include "mac/txqueue.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace gttsch {

struct MacConfig {
  SlotTiming timing;
  HoppingSequence hopping;
  TimeUs eb_period = 2000000;       ///< Table II: 2 s
  TimeUs eb_jitter = 500000;        ///< uniform extra delay per EB
  /// Channel dwell while scanning. Must exceed eb_period + eb_jitter so a
  /// dwell on the right channel is guaranteed to catch a beacon (GT-TSCH
  /// broadcast cells can map to a single physical channel when the
  /// slotframe length is a multiple of the hopping-sequence length).
  TimeUs scan_dwell = 4000000;
  int max_retries = 4;              ///< Table II: 4 retransmissions
  int min_backoff_exponent = 1;     ///< TSCH macMinBE
  int max_backoff_exponent = 5;     ///< TSCH macMaxBE
  /// Local-oscillator error in parts-per-million: this node's slots run
  /// (1 + drift_ppm*1e-6) longer than nominal. Non-root nodes re-anchor
  /// their slot boundaries on every EB heard from their time source
  /// (TSCH time correction); the rx guard absorbs the residual error.
  double drift_ppm = 0.0;
  std::size_t data_queue_capacity = 16;    ///< Q_max of the paper
  std::size_t control_queue_capacity = 8;  ///< per-neighbor control cap
  /// Reference mode: wake on every slot boundary instead of jumping to the
  /// next active slot. Only useful for equivalence testing and debugging;
  /// the GTTSCH_FORCE_PER_SLOT environment variable forces it globally.
  bool per_slot_stepping = false;
};

/// Upper-layer hooks (implemented by the Node integration layer).
class MacUpcalls {
 public:
  virtual ~MacUpcalls() = default;
  /// Joined a TSCH network (EB heard and clock adopted). Root nodes get
  /// this immediately on start_as_root().
  virtual void mac_associated(Asn asn, const Frame& eb) = 0;
  /// Any decodable non-ACK frame addressed to us or broadcast.
  virtual void mac_frame_received(const Frame& frame) = 0;
  /// Final outcome of a unicast transmission: acked, or dropped after the
  /// retry budget. `attempts` counts transmissions of this frame.
  virtual void mac_tx_result(const Frame& frame, bool acked, int attempts) = 0;
};

struct MacCounters {
  std::uint64_t unicast_tx_attempts = 0;
  std::uint64_t unicast_success = 0;
  std::uint64_t unicast_drops = 0;  ///< retry budget exhausted
  std::uint64_t retransmissions = 0;
  std::uint64_t broadcast_sent = 0;
  std::uint64_t eb_sent = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_duplicates = 0;
  std::uint64_t acks_sent = 0;
};

class TschMac {
 public:
  TschMac(Simulator& sim, Medium& medium, Radio& radio, MacConfig config, Rng rng);
  ~TschMac();
  TschMac(const TschMac&) = delete;
  TschMac& operator=(const TschMac&) = delete;

  void set_upcalls(MacUpcalls* upcalls) { upcalls_ = upcalls; }

  /// Provider for EB content (join priority, GT-TSCH family channel...).
  /// Returning nullopt suppresses EB emission (e.g. not in a DODAG yet).
  void set_eb_provider(std::function<std::optional<EbPayload>()> provider);

  /// Start as the PAN coordinator / DODAG root: ASN 0 begins now.
  void start_as_root();

  /// Start scanning for EBs to join an existing network.
  void start_scanning();

  /// Hard stop (node failure / power-off): cancels all timers, silences
  /// the radio, and drops every queue. The MAC cannot be restarted.
  void shutdown();

  bool associated() const { return state_ == State::kAssociated; }
  bool scanning() const { return state_ == State::kScanning; }

  /// The ASN of the current slot. With idle-slot skipping the MAC may not
  /// have woken since the last active slot, so this is computed from the
  /// slot anchor — it always matches what per-slot stepping would report.
  Asn asn() const;

  NodeId time_source() const { return time_source_; }

  /// Cumulative time corrections applied from time-source EBs (diagnostic;
  /// stays 0 when drift_ppm == 0).
  TimeUs total_sync_correction() const { return total_sync_correction_; }

  /// Enqueue for transmission; routing by frame dst (broadcast/unicast).
  /// False = queue full (caller records the drop).
  bool enqueue(FramePtr frame);

  TschSchedule& schedule() { return schedule_; }
  const TschSchedule& schedule() const { return schedule_; }
  TxQueues& queues() { return queues_; }
  const TxQueues& queues() const { return queues_; }

  /// Current number of queued data frames — the paper's q_i.
  std::size_t data_queue_length() const { return queues_.data_queued(); }

  const MacConfig& config() const { return config_; }
  const MacCounters& counters() const { return counters_; }
  NodeId id() const { return radio_.id(); }

  /// True when this MAC steps every slot (reference mode).
  bool per_slot_stepping() const { return per_slot_; }

  /// Duration of one slotframe of `length` slots.
  TimeUs slotframe_duration(std::uint16_t length) const {
    return config_.timing.slot_duration * length;
  }

 private:
  enum class State { kOff, kScanning, kAssociated };

  struct PendingTx {
    Cell cell;
    NodeId target = kNoNode;   // kBroadcastId for broadcast frames
    bool shared = false;
    bool is_eb = false;
    std::uint32_t mac_seq = 0;
    FramePtr frame;
  };

  /// This node's (possibly drifted) slot duration.
  TimeUs local_slot_duration() const;
  void arm_slot_timer();
  /// Arm the next wakeup from the current slot anchor: the next slot after
  /// an active one (so the boundary's defensive clears still run), else
  /// the next ASN holding any cell, else nothing.
  void schedule_next_slot();
  /// Arm the slot timer for `target` (> asn_), accumulating the drifted
  /// duration of every slot in between exactly as per-slot stepping would.
  void arm_wake_at(Asn target);
  /// Walk an anchor (asn, slot start, drift residue) forward over every
  /// slot boundary at or before `now`, using the exact per-slot drift
  /// arithmetic. Returns true when at least one boundary was crossed.
  /// The single walker behind advance_anchor_to_now() and asn() — they
  /// must share the operation sequence or fast-path equivalence breaks.
  bool walk_anchor(Asn& asn, TimeUs& slot_start, double& accum, TimeUs now) const;
  /// Walk the slot anchor over boundaries that have already elapsed (all
  /// idle by construction); keeps asn_/current_slot_start_/drift_accum_
  /// equal to what per-slot stepping would hold at this instant.
  void advance_anchor_to_now();
  /// Schedule-change hook: re-aim the pending wakeup (fast path only).
  void on_schedule_changed();
  /// Fast path: the boundary after an active slot exists only to clear
  /// state the slot may have left running (an rx-guard listen, a pending
  /// frame). When the slot provably wound down — radio off, no pending
  /// frame or ACK, no in-slot timer armed — there is nothing to clear, so
  /// the wake re-aims at the next *active* slot instead. Called from every
  /// point where in-slot activity can conclude; a no-op unless the armed
  /// wake is the post-active cutoff boundary.
  void maybe_skip_cutoff_slot();
  void on_slot_start();
  void maybe_resync(const Frame& eb_frame);
  bool try_start_tx(const Cell& cell);
  void start_rx(const Cell& cell);
  void rx_guard_check(PhysChannel channel);
  void on_radio_rx(FramePtr frame);
  void on_radio_tx_done();
  void on_ack_timeout();
  void conclude_tx(bool acked);
  void handle_received_frame(const Frame& frame);
  void maybe_send_ack(const Frame& frame);
  void scan_hop();
  void associate_from_eb(const Frame& frame);
  bool is_duplicate(NodeId src, std::uint32_t mac_seq);

  Simulator& sim_;
  Medium& medium_;
  Radio& radio_;
  MacConfig config_;
  Rng rng_;
  MacUpcalls* upcalls_ = nullptr;
  std::function<std::optional<EbPayload>()> eb_provider_;

  State state_ = State::kOff;
  bool per_slot_ = false;  ///< config.per_slot_stepping or env override

  // --- slot anchor: state of the most recently started slot -------------
  Asn asn_ = 0;
  /// Start of the current slot (anchored at association, advanced by the
  /// node's drifted local slot duration, corrected by time-source EBs).
  TimeUs current_slot_start_ = 0;
  double drift_accum_ = 0.0;     ///< sub-microsecond drift residue at anchor
  bool anchor_slot_active_ = false;  ///< anchor slot had >=1 cell at start

  // --- pending wakeup ----------------------------------------------------
  Asn wake_asn_ = 0;             ///< slot the armed slot timer will start
  TimeUs next_slot_time_ = 0;    ///< its boundary time
  double wake_drift_accum_ = 0.0;  ///< drift residue to commit at the wake

  NodeId time_source_ = kNoNode;
  TimeUs total_sync_correction_ = 0;

  TschSchedule schedule_;
  TxQueues queues_;
  std::uint32_t next_mac_seq_ = 1;
  std::map<NodeId, std::deque<std::uint32_t>> recent_rx_seqs_;

  OneShotTimer slot_timer_;     // keyed by node id (see kDefaultEventKey)
  OneShotTimer action_timer_;   // tx start / rx guard inside the slot
  OneShotTimer ack_timer_;      // sender-side ACK deadline
  OneShotTimer ack_tx_timer_;   // receiver-side delayed ACK
  OneShotTimer radio_off_timer_;
  OneShotTimer scan_timer_;

  std::optional<PendingTx> pending_tx_;
  bool awaiting_ack_ = false;
  TimeUs eb_next_due_ = 0;
  std::size_t scan_channel_index_ = 0;

  std::vector<TschSchedule::ActiveCell> cells_scratch_;  ///< per-slot reuse

  MacCounters counters_;
};

}  // namespace gttsch
