#include "mac/tsch_mac.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
constexpr std::size_t kDedupWindow = 16;

/// GTTSCH_FORCE_PER_SLOT=1 forces every MAC into per-slot reference
/// stepping — the baseline the fast-path equivalence tests and benches
/// compare against. The common falsey spellings ("", "0", "false", "no",
/// "off") leave the fast path on; anything else enables the override.
bool force_per_slot_env() {
  static const bool forced = [] {
    const char* v = std::getenv("GTTSCH_FORCE_PER_SLOT");
    if (v == nullptr) return false;
    std::string value(v);
    for (char& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return !(value.empty() || value == "0" || value == "false" || value == "no" ||
             value == "off");
  }();
  return forced;
}

/// One slot of drifted-boundary arithmetic: the oscillator error adds
/// `step` (fractional) microseconds per slot; whole microseconds extend
/// the boundary, the sub-microsecond residue carries over. Every consumer
/// of the slot timeline — wake arming, anchor advance, asn() — must share
/// this exact operation sequence, or skipped spans stop being
/// bit-identical to per-slot stepping.
struct DriftWalk {
  double step;
  double accum;

  static DriftWalk from(const MacConfig& config, double accum) {
    return {static_cast<double>(config.timing.slot_duration) * config.drift_ppm * 1e-6,
            accum};
  }

  /// Advance one slot; returns the extra whole microseconds beyond the
  /// nominal slot duration (truncated toward zero, residue retained).
  TimeUs advance() {
    accum += step;
    const TimeUs extra = static_cast<TimeUs>(accum);  // trunc toward zero
    accum -= static_cast<double>(extra);
    return extra;
  }
};
}  // namespace

TschMac::TschMac(Simulator& sim, Medium& medium, Radio& radio, MacConfig config, Rng rng)
    : sim_(sim),
      medium_(medium),
      radio_(radio),
      config_(std::move(config)),
      rng_(rng),
      queues_(config_.data_queue_capacity, config_.control_queue_capacity),
      slot_timer_(sim, radio.id()),
      action_timer_(sim),
      ack_timer_(sim),
      ack_tx_timer_(sim),
      radio_off_timer_(sim),
      scan_timer_(sim) {
  per_slot_ = config_.per_slot_stepping || force_per_slot_env();
  radio_.on_rx = [this](FramePtr f) { on_radio_rx(std::move(f)); };
  radio_.on_tx_done = [this] { on_radio_tx_done(); };
  schedule_.set_change_listener([this] { on_schedule_changed(); });
}

TschMac::~TschMac() {
  radio_.on_rx = nullptr;
  radio_.on_tx_done = nullptr;
}

void TschMac::set_eb_provider(std::function<std::optional<EbPayload>()> provider) {
  eb_provider_ = std::move(provider);
}

void TschMac::start_as_root() {
  GTTSCH_CHECK(state_ == State::kOff);
  state_ = State::kAssociated;
  asn_ = 0;
  current_slot_start_ = sim_.now();
  drift_accum_ = 0.0;
  anchor_slot_active_ = false;
  time_source_ = radio_.id();
  eb_next_due_ = sim_.now() + static_cast<TimeUs>(rng_.uniform(
                     static_cast<std::uint64_t>(config_.eb_period)));
  // Arm slot 0 for *now* before the upcall: the scheduling function
  // installs its first cells inside mac_associated, and the change
  // listener must see the pending wake so it does not re-aim past slot 0.
  wake_asn_ = 0;
  wake_drift_accum_ = 0.0;
  next_slot_time_ = sim_.now();
  arm_slot_timer();
  if (upcalls_ != nullptr) {
    Frame synthetic;
    synthetic.type = FrameType::kEb;
    synthetic.src = radio_.id();
    synthetic.payload = EbPayload{};
    upcalls_->mac_associated(0, synthetic);
  }
}

void TschMac::start_scanning() {
  GTTSCH_CHECK(state_ == State::kOff);
  state_ = State::kScanning;
  scan_channel_index_ = static_cast<std::size_t>(rng_.uniform(config_.hopping.size()));
  scan_hop();
}

void TschMac::shutdown() {
  if (state_ == State::kAssociated) {
    // Freeze the on-demand ASN: once state_ leaves kAssociated, asn()
    // reports the stored anchor verbatim, so walk it to now first — a MAC
    // killed mid-run must report the same final ASN whether the anchor was
    // advanced every slot or left behind by idle-slot skipping.
    walk_anchor(asn_, current_slot_start_, drift_accum_, sim_.now());
  }
  slot_timer_.stop();
  action_timer_.stop();
  ack_timer_.stop();
  ack_tx_timer_.stop();
  radio_off_timer_.stop();
  scan_timer_.stop();
  pending_tx_.reset();
  awaiting_ack_ = false;
  state_ = State::kOff;
  if (radio_.state() == RadioState::kListening) radio_.turn_off();
}

void TschMac::scan_hop() {
  radio_.listen(config_.hopping.sequence()[scan_channel_index_]);
  scan_channel_index_ = (scan_channel_index_ + 1) % config_.hopping.size();
  scan_timer_.start(config_.scan_dwell, [this] { scan_hop(); });
}

void TschMac::associate_from_eb(const Frame& frame) {
  const EbPayload& eb = frame.as<EbPayload>();
  scan_timer_.stop();
  const TimeUs air = frame_airtime(frame.length_bytes);
  const TimeUs slot_start = sim_.now() - air - config_.timing.tx_offset;
  asn_ = eb.asn;
  current_slot_start_ = slot_start;
  drift_accum_ = 0.0;
  anchor_slot_active_ = false;
  state_ = State::kAssociated;
  time_source_ = frame.src;
  radio_.turn_off();
  eb_next_due_ = sim_.now() + config_.eb_period +
                 static_cast<TimeUs>(rng_.uniform(static_cast<std::uint64_t>(config_.eb_jitter)));
  GTTSCH_LOG_INFO("mac", "node %u associated via EB from %u at ASN %llu", radio_.id(),
                  frame.src, static_cast<unsigned long long>(eb.asn));
  if (upcalls_ != nullptr) upcalls_->mac_associated(eb.asn, frame);
  schedule_next_slot();
}

TimeUs TschMac::local_slot_duration() const { return config_.timing.slot_duration; }

void TschMac::arm_slot_timer() {
  slot_timer_.start(std::max<TimeUs>(0, next_slot_time_ - sim_.now()),
                    [this] { on_slot_start(); });
}

void TschMac::arm_wake_at(Asn target) {
  GTTSCH_CHECK(target > asn_);
  const std::uint64_t span = target - asn_;
  double accum = drift_accum_;
  TimeUs total = 0;
  if (config_.drift_ppm == 0.0) {
    total = static_cast<TimeUs>(span) * config_.timing.slot_duration;
  } else {
    // The node's oscillator error stretches (or shrinks) its local slots;
    // sub-microsecond residue accumulates so any ppm value is honoured.
    // Iterated per skipped slot so the accumulator holds bit-identical
    // values to per-slot stepping at every boundary.
    DriftWalk walk = DriftWalk::from(config_, accum);
    for (std::uint64_t i = 0; i < span; ++i)
      total += config_.timing.slot_duration + walk.advance();
    accum = walk.accum;
  }
  wake_asn_ = target;
  wake_drift_accum_ = accum;
  next_slot_time_ = current_slot_start_ + total;
  arm_slot_timer();
}

void TschMac::schedule_next_slot() {
  if (per_slot_ || anchor_slot_active_) {
    // Per-slot reference mode, or the slot after an active one: the next
    // boundary runs to perform the end-of-slot defensive clears — e.g.
    // cutting off a carrier-sense listen that the rx guard extended
    // across the boundary. maybe_skip_cutoff_slot() re-aims this wake
    // later if the active slot winds down with nothing left to clear.
    arm_wake_at(asn_ + 1);
    return;
  }
  const Asn target = schedule_.next_active_asn(asn_);
  if (target == TschSchedule::kNoActiveAsn) {
    // Nothing scheduled anywhere: sleep until the schedule changes.
    slot_timer_.stop();
    return;
  }
  arm_wake_at(target);
}

bool TschMac::walk_anchor(Asn& asn, TimeUs& slot_start, double& accum,
                          TimeUs now) const {
  const TimeUs dur = config_.timing.slot_duration;
  if (config_.drift_ppm == 0.0) {
    if (now - slot_start < dur) return false;
    const auto k = static_cast<std::uint64_t>((now - slot_start) / dur);
    asn += k;
    slot_start += static_cast<TimeUs>(k) * dur;
    return true;
  }
  DriftWalk walk = DriftWalk::from(config_, accum);
  bool moved = false;
  while (true) {
    DriftWalk next = walk;
    const TimeUs boundary = slot_start + dur + next.advance();
    if (boundary > now) break;
    walk = next;
    slot_start = boundary;
    ++asn;
    moved = true;
  }
  accum = walk.accum;
  return moved;
}

void TschMac::advance_anchor_to_now() {
  if (walk_anchor(asn_, current_slot_start_, drift_accum_, sim_.now()))
    anchor_slot_active_ = false;
}

void TschMac::on_schedule_changed() {
  if (per_slot_ || state_ != State::kAssociated) return;
  // A wake armed for this exact instant fires right after the current
  // event (slot events precede same-time protocol events) and will read
  // the updated schedule itself.
  if (slot_timer_.running() && next_slot_time_ <= sim_.now()) return;
  advance_anchor_to_now();
  if (anchor_slot_active_) return;  // boundary at asn_+1 is already armed
  const Asn target = schedule_.next_active_asn(asn_);
  if (target == TschSchedule::kNoActiveAsn) {
    slot_timer_.stop();
    return;
  }
  arm_wake_at(target);
}

void TschMac::maybe_skip_cutoff_slot() {
  if (per_slot_ || state_ != State::kAssociated || !anchor_slot_active_) return;
  // Quiescence: nothing the cutoff boundary's defensive clears would
  // touch. Every in-slot continuation lives in these timers / flags, so
  // when all are idle and the radio is dark the slot is provably over.
  if (pending_tx_.has_value() || awaiting_ack_) return;
  if (radio_.state() != RadioState::kOff) return;
  if (action_timer_.running() || ack_timer_.running() || ack_tx_timer_.running() ||
      radio_off_timer_.running()) {
    return;
  }
  // The armed wake is the asn_+1 cutoff boundary; demote the anchor slot
  // to "nothing to clear" and aim at the next active slot instead. The
  // skipped boundary was externally pure (no RNG, no radio, no counters),
  // so fast-path equivalence is preserved.
  anchor_slot_active_ = false;
  schedule_next_slot();
}

Asn TschMac::asn() const {
  if (state_ != State::kAssociated) return asn_;
  // Count the slot boundaries that have elapsed since the anchor (all
  // idle, or per-slot stepping would have moved the anchor already) —
  // exactly the ASN a per-slot MAC would hold at this instant.
  Asn asn = asn_;
  TimeUs slot_start = current_slot_start_;
  double accum = drift_accum_;
  walk_anchor(asn, slot_start, accum, sim_.now());
  return asn;
}

void TschMac::on_slot_start() {
  asn_ = wake_asn_;
  drift_accum_ = wake_drift_accum_;
  current_slot_start_ = sim_.now();

  // A well-formed slot never leaks state past its end; clear defensively.
  action_timer_.stop();
  ack_timer_.stop();
  ack_tx_timer_.stop();
  radio_off_timer_.stop();
  if (pending_tx_.has_value()) {
    GTTSCH_LOG_WARN("mac", "node %u: pending tx leaked across slot boundary", radio_.id());
    pending_tx_.reset();
    awaiting_ack_ = false;
  }
  if (radio_.state() == RadioState::kListening) radio_.turn_off();

  schedule_.active_cells_into(asn_, cells_scratch_);
  anchor_slot_active_ = !cells_scratch_.empty();
  schedule_next_slot();
  if (cells_scratch_.empty()) return;

  // Pass 1: a transmit opportunity with a concrete frame wins.
  for (const auto& [handle, cell] : cells_scratch_) {
    (void)handle;
    if (cell.is_tx() && try_start_tx(cell)) return;
  }
  // Pass 2: otherwise listen on the first Rx cell.
  for (const auto& [handle, cell] : cells_scratch_) {
    (void)handle;
    if (cell.is_rx()) {
      start_rx(cell);
      return;
    }
  }
  // No cell engaged (e.g. Tx cells with empty queues): the slot is already
  // quiescent, so the cutoff boundary has nothing to clear.
  maybe_skip_cutoff_slot();
}

bool TschMac::try_start_tx(const Cell& cell) {
  NodeId target = kNoNode;
  bool is_eb = false;
  QueuedPacket* pkt = nullptr;

  if (cell.neighbor != kBroadcastId) {
    pkt = queues_.peek_unicast(cell.neighbor);
    if (pkt == nullptr) return false;
    if (cell.is_shared()) {
      NeighborQueue* q = queues_.queue_for(cell.neighbor);
      if (q != nullptr && q->backoff_window > 0) {
        --q->backoff_window;
        return false;
      }
    }
    target = cell.neighbor;
  } else {
    pkt = queues_.peek_broadcast();
    if (pkt != nullptr) {
      target = kBroadcastId;
    } else if (eb_provider_ && sim_.now() >= eb_next_due_) {
      if (eb_provider_().has_value()) {
        is_eb = true;
        target = kBroadcastId;
      }
    }
    if (pkt == nullptr && !is_eb && cell.is_shared()) {
      // Shared family/common cell: any unicast backlog may use it.
      if (const auto t = queues_.pick_any_unicast_shared()) {
        target = *t;
        pkt = queues_.peek_unicast(*t);
      }
    }
    if (pkt == nullptr && !is_eb) return false;
  }

  PendingTx pt;
  pt.cell = cell;
  pt.target = target;
  pt.shared = cell.is_shared();
  pt.is_eb = is_eb;
  if (pkt != nullptr) {
    pt.mac_seq = pkt->mac_seq;
    pt.frame = pkt->frame;
  }
  pending_tx_ = std::move(pt);

  const TimeUs tx_at = current_slot_start_ + config_.timing.tx_offset;
  action_timer_.start(std::max<TimeUs>(0, tx_at - sim_.now()), [this] {
    if (!pending_tx_.has_value()) return;
    PendingTx& pt2 = *pending_tx_;
    if (pt2.is_eb) {
      auto info = eb_provider_ ? eb_provider_() : std::nullopt;
      if (!info.has_value()) {
        pending_tx_.reset();
        maybe_skip_cutoff_slot();
        return;
      }
      EbPayload eb = *info;
      eb.asn = asn_;
      pt2.frame = make_eb_frame(radio_.id(), eb);
    } else if (pt2.target != kBroadcastId) {
      QueuedPacket* head = queues_.peek_unicast(pt2.target);
      if (head == nullptr || head->mac_seq != pt2.mac_seq) {
        // Queue changed underneath us (e.g. parent switch); abort cleanly.
        pending_tx_.reset();
        maybe_skip_cutoff_slot();
        return;
      }
      ++head->attempts;
      ++counters_.unicast_tx_attempts;
      if (head->attempts > 1) ++counters_.retransmissions;
    }
    const PhysChannel ch = config_.hopping.channel_for(asn_, pt2.cell.channel_offset);
    radio_.transmit(pt2.frame, ch);
  });
  return true;
}

void TschMac::on_radio_tx_done() {
  if (!pending_tx_.has_value()) {
    // e.g. an ACK we sent — usually the slot's last action.
    maybe_skip_cutoff_slot();
    return;
  }
  PendingTx& pt = *pending_tx_;
  if (pt.target == kBroadcastId) {
    if (pt.is_eb) {
      ++counters_.eb_sent;
      eb_next_due_ =
          sim_.now() + config_.eb_period +
          static_cast<TimeUs>(rng_.uniform(static_cast<std::uint64_t>(config_.eb_jitter)));
    } else {
      ++counters_.broadcast_sent;
      queues_.pop_broadcast();
    }
    pending_tx_.reset();
    maybe_skip_cutoff_slot();
    return;
  }
  // Unicast: listen for the ACK.
  awaiting_ack_ = true;
  const PhysChannel ch = config_.hopping.channel_for(asn_, pt.cell.channel_offset);
  radio_.listen(ch);
  const TimeUs ack_air = frame_airtime(default_frame_length(FrameType::kAck));
  ack_timer_.start(config_.timing.ack_delay + ack_air + config_.timing.ack_slack,
                   [this] { on_ack_timeout(); });
}

void TschMac::on_ack_timeout() {
  conclude_tx(false);
  maybe_skip_cutoff_slot();
}

void TschMac::conclude_tx(bool acked) {
  if (!pending_tx_.has_value()) return;
  ack_timer_.stop();
  awaiting_ack_ = false;
  if (radio_.state() == RadioState::kListening) radio_.turn_off();

  const PendingTx pt = *pending_tx_;
  pending_tx_.reset();

  NeighborQueue* q = queues_.queue_for(pt.target);
  QueuedPacket* head = queues_.peek_unicast(pt.target);
  const bool head_matches = head != nullptr && head->mac_seq == pt.mac_seq;
  const int attempts = head_matches ? head->attempts : 1;

  if (acked) {
    ++counters_.unicast_success;
    if (q != nullptr && pt.shared) {
      q->backoff_exponent = 0;
      q->backoff_window = 0;
    }
    if (head_matches) queues_.pop_unicast(pt.target);
    if (upcalls_ != nullptr) upcalls_->mac_tx_result(*pt.frame, true, attempts);
    return;
  }

  if (!head_matches) return;  // packet was retargeted away; nothing to do

  if (attempts > config_.max_retries) {
    queues_.pop_unicast(pt.target);
    ++counters_.unicast_drops;
    if (upcalls_ != nullptr) upcalls_->mac_tx_result(*pt.frame, false, attempts);
    return;
  }

  // Will retransmit at the next opportunity; shared cells back off first.
  if (pt.shared && q != nullptr) {
    q->backoff_exponent = std::clamp(q->backoff_exponent + 1, config_.min_backoff_exponent,
                                     config_.max_backoff_exponent);
    q->backoff_window =
        static_cast<int>(rng_.uniform(static_cast<std::uint64_t>(1) << q->backoff_exponent));
  }
}

void TschMac::start_rx(const Cell& cell) {
  const PhysChannel ch = config_.hopping.channel_for(asn_, cell.channel_offset);
  const TimeUs on_at =
      current_slot_start_ + config_.timing.tx_offset - config_.timing.rx_guard_before;
  action_timer_.start(std::max<TimeUs>(0, on_at - sim_.now()), [this, ch] {
    radio_.listen(ch);
    radio_off_timer_.start(config_.timing.rx_guard_before + config_.timing.rx_guard_after,
                           [this, ch] { rx_guard_check(ch); });
  });
}

void TschMac::rx_guard_check(PhysChannel channel) {
  if (radio_.state() != RadioState::kListening) {
    maybe_skip_cutoff_slot();
    return;
  }
  const TimeUs busy = medium_.busy_until(radio_.id(), channel);
  if (busy <= sim_.now()) {
    // Keep listening if we owe an ACK transmission shortly; otherwise idle.
    if (!ack_tx_timer_.running()) {
      radio_.turn_off();
      maybe_skip_cutoff_slot();
    }
    return;
  }
  radio_off_timer_.start(busy + config_.timing.rx_repoll_slack - sim_.now(),
                         [this, channel] { rx_guard_check(channel); });
}

void TschMac::on_radio_rx(FramePtr frame) {
  GTTSCH_CHECK(frame != nullptr);
  if (state_ == State::kScanning) {
    if (frame->type == FrameType::kEb) associate_from_eb(*frame);
    return;
  }
  if (awaiting_ack_) {
    if (frame->type == FrameType::kAck && pending_tx_.has_value() &&
        frame->src == pending_tx_->target && frame->dst == radio_.id()) {
      conclude_tx(true);
      maybe_skip_cutoff_slot();
    }
    return;
  }
  if (frame->type == FrameType::kAck) return;  // not ours to consume
  handle_received_frame(*frame);
}

void TschMac::maybe_resync(const Frame& eb_frame) {
  const EbPayload& eb = eb_frame.as<EbPayload>();
  if (eb.asn != asn_) return;  // sender disagrees on the slot count; ignore
  const TimeUs sender_slot_start =
      sim_.now() - frame_airtime(eb_frame.length_bytes) - config_.timing.tx_offset;
  const TimeUs correction = sender_slot_start - current_slot_start_;
  // Corrections beyond the guard would mean we already lost sync; a real
  // node would re-scan. Within the guard we re-anchor (TSCH time
  // correction via enhanced beacons).
  if (correction > config_.timing.rx_guard_before ||
      correction < -config_.timing.rx_guard_before)
    return;
  if (correction == 0) return;
  current_slot_start_ += correction;
  next_slot_time_ += correction;
  total_sync_correction_ += correction >= 0 ? correction : -correction;
  arm_slot_timer();
}

void TschMac::handle_received_frame(const Frame& frame) {
  ++counters_.rx_frames;
  if (frame.type == FrameType::kEb && frame.src == time_source_ &&
      state_ == State::kAssociated) {
    maybe_resync(frame);
  }
  if (frame.dst != kBroadcastId) {
    if (frame.dst != radio_.id()) return;  // overheard unicast
    maybe_send_ack(frame);
    if (is_duplicate(frame.src, frame.mac_seq)) {
      ++counters_.rx_duplicates;
      return;
    }
  }
  if (upcalls_ != nullptr) upcalls_->mac_frame_received(frame);
}

void TschMac::maybe_send_ack(const Frame& frame) {
  const NodeId to = frame.src;
  // The ACK goes out on the channel of the current slot.
  PhysChannel ch = radio_.channel();
  ack_tx_timer_.start(config_.timing.ack_delay, [this, to, ch] {
    if (radio_.state() == RadioState::kTransmitting) return;
    if (radio_.state() == RadioState::kListening) radio_.turn_off();
    ++counters_.acks_sent;
    radio_.transmit(make_ack_frame(radio_.id(), to), ch);
  });
}

bool TschMac::is_duplicate(NodeId src, std::uint32_t mac_seq) {
  auto& recent = recent_rx_seqs_[src];
  if (std::find(recent.begin(), recent.end(), mac_seq) != recent.end()) return true;
  recent.push_back(mac_seq);
  if (recent.size() > kDedupWindow) recent.pop_front();
  return false;
}

bool TschMac::enqueue(FramePtr frame) {
  GTTSCH_CHECK(frame != nullptr);
  Frame copy = *frame;
  copy.mac_seq = next_mac_seq_++;
  auto stamped = std::make_shared<const Frame>(std::move(copy));
  if (stamped->dst == kBroadcastId)
    return queues_.enqueue_broadcast(std::move(stamped), next_mac_seq_ - 1, sim_.now());
  return queues_.enqueue_unicast(stamped->dst, stamped, next_mac_seq_ - 1, sim_.now());
}

}  // namespace gttsch
