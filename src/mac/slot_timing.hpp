// Intra-timeslot timing template (802.15.4e style, stretched to the paper's
// 15 ms slots). All values are offsets from the slot start.
#pragma once

#include "util/types.hpp"

namespace gttsch {

struct SlotTiming {
  /// Total slot duration (paper/Table II: 15 ms).
  TimeUs slot_duration = 15000;
  /// Data frame transmission begins this far into the slot (TsTxOffset).
  TimeUs tx_offset = 2120;
  /// Receiver turns its radio on this long before tx_offset…
  TimeUs rx_guard_before = 1100;
  /// …and, if the channel stayed idle, off this long after tx_offset.
  TimeUs rx_guard_after = 1100;
  /// Gap between the end of a received frame and the ACK (TsTxAckDelay).
  TimeUs ack_delay = 1000;
  /// Extra slack the sender waits for an ACK beyond its nominal end.
  TimeUs ack_slack = 400;
  /// When carrier sense finds the channel busy at the end of the rx guard,
  /// the receiver stays on and re-polls this long after the sensed
  /// transmission's predicted end — covering the turnaround between a
  /// heard frame and the ACK we may owe for it (ack_delay is 1000 us; a
  /// fraction of it suffices since the poll only needs to outlive the
  /// frame-end bookkeeping, not the ACK itself).
  TimeUs rx_repoll_slack = 200;

  /// Radio-on cost of an idle (no frame) Rx slot.
  TimeUs idle_rx_cost() const { return rx_guard_before + rx_guard_after; }
};

}  // namespace gttsch
