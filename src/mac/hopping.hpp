// TSCH channel hopping: physical channel = seq[(ASN + channel offset) % |seq|].
#pragma once

#include <vector>

#include "util/types.hpp"

namespace gttsch {

class HoppingSequence {
 public:
  /// Default: the paper's Table II sequence {17,23,15,25,19,11,13,21}.
  HoppingSequence();
  explicit HoppingSequence(std::vector<PhysChannel> seq);

  PhysChannel channel_for(Asn asn, ChannelOffset offset) const;

  std::size_t size() const { return seq_.size(); }
  const std::vector<PhysChannel>& sequence() const { return seq_; }

  /// Number of usable channel offsets (== sequence length: offsets beyond
  /// that alias lower ones).
  std::size_t num_offsets() const { return seq_.size(); }

 private:
  std::vector<PhysChannel> seq_;
};

}  // namespace gttsch
