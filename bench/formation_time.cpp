// Bench: network-formation dynamics (the concern of Vallati et al. [32],
// discussed in the paper's related work). Measures, for every scheduler
// in the SfRegistry zoo, when every node has (a) associated to TSCH,
// (b) acquired an RPL parent, and (c) reached SchedulingFunction::
// operational() (GT-TSCH: the 6P bootstrap; e-MSF: the first negotiated
// cell; autonomous SFs: association).
//
// Runs on the campaign engine, so it speaks the full scale-out flag set
// shared with the figure benches (see figure_common.hpp / ROADMAP):
//   --jobs N, --seeds LIST, --out PREFIX, --shard i/N,
//   --journal PATH, --resume PATH, --ci-rel FRAC (+ --min-seeds/
//   --max-seeds/--batch/--metric), --set "field=v;..." (base-config
//   overrides, e.g. trace_kind=random-walk for formation under mobility)
// Journal/CSV metric mapping (formation seconds ride in the panel slots):
//   pdr_percent <- assoc_s, avg_delay_ms <- joined_s,
//   p95_delay_ms <- operational_s; 600 = never (budget).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "figure_common.hpp"
#include "phy/dynamic_link.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "sixp/sf_registry.hpp"
#include "stats/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace gttsch;
using namespace gttsch::literals;

constexpr double kBudgetSeconds = 600;

struct FormationResult {
  double assoc_s = -1;        ///< last node associated
  double joined_s = -1;       ///< last node joined RPL
  double operational_s = -1;  ///< last node's SF operational()
  bool formed = false;
};

FormationResult measure(const ScenarioConfig& sc) {
  auto nc = sc.make_node_config();
  nc.app_rate_ppm = 0.0;  // formation only

  // The config's own topology (identical to the historical
  // build_dodag(1, ...) for the default dodag_count=1 grid), so --set
  // topology/dodag overrides — and the pre-run trace validation, which
  // checks node ids against make_topology() — see the network actually run.
  const TopologySpec topo = sc.make_topology();

  // Optional dynamics (--set trace_kind=...): formation under churn. The
  // trace window covers the whole formation budget, not the paper's
  // warmup/measure split.
  ScenarioConfig trace_config = sc;
  trace_config.warmup = 0;
  trace_config.measure = static_cast<TimeUs>(kBudgetSeconds) * 1000000;
  Trace trace;
  std::string trace_error;
  if (!trace_config.make_trace(topo, &trace, &trace_error)) {
    std::fprintf(stderr, "formation_time: %s\n", trace_error.c_str());
    std::abort();
  }
  DynamicLinkModel* failures = nullptr;
  Network net(sc.seed, scenario_link_model_factory(sc, trace, &failures), topo, nc,
              nullptr);
  TracePlayer player(net, std::move(trace), failures);
  net.start();
  player.start();

  // Stage counts ride the shared Timeline sampler (stats/telemetry.hpp) at
  // 1 Hz — the same engine Telemetry drives for its JSONL gauge samples.
  const auto count_non_roots = [&net](auto pred) {
    double n = 0;
    for (const auto& [id, node] : net.nodes()) {
      if (!node->is_root() && pred(*node)) n += 1;
    }
    return n;
  };
  const double total = count_non_roots([](Node&) { return true; });
  Timeline sampler(net.sim(), 1_s);
  sampler.add_gauge("assoc", [&count_non_roots] {
    return count_non_roots([](Node& n) { return n.mac().associated(); });
  });
  sampler.add_gauge("joined", [&count_non_roots] {
    return count_non_roots([](Node& n) { return n.rpl().joined(); });
  });
  // The common-interface stage: associated AND the SF reports itself
  // operational (autonomous SFs: immediately; 6P SFs: after bootstrap).
  sampler.add_gauge("operational", [&count_non_roots] {
    return count_non_roots(
        [](Node& n) { return n.mac().associated() && n.sf().operational(); });
  });
  sampler.start();

  FormationResult r;
  for (int t = 1; t <= static_cast<int>(kBudgetSeconds); ++t) {
    net.sim().run_until(static_cast<TimeUs>(t) * 1000000);
    if (r.assoc_s < 0 && sampler.latest("assoc") == total) r.assoc_s = t;
    if (r.joined_s < 0 && sampler.latest("joined") == total) r.joined_s = t;
    if (r.operational_s < 0 && sampler.latest("operational") == total)
      r.operational_s = t;
    if (r.joined_s >= 0 && r.operational_s >= 0) {
      r.formed = true;
      break;
    }
  }
  return r;
}

/// Campaign job: formation seconds packed into the panel-metric slots (see
/// file header) so journaling, sharded merge, and adaptive CI stopping all
/// work unchanged.
ExperimentResult run_formation_job(const ScenarioConfig& sc) {
  const FormationResult r = measure(sc);
  ExperimentResult out;
  out.metrics.pdr_percent = r.assoc_s > 0 ? r.assoc_s : kBudgetSeconds;
  out.metrics.avg_delay_ms = r.joined_s > 0 ? r.joined_s : kBudgetSeconds;
  // A run that never got every SF operational charges the full budget so
  // bootstrap failures cannot average (or CI-converge) toward zero.
  out.metrics.p95_delay_ms = r.operational_s > 0 ? r.operational_s : kBudgetSeconds;
  out.metrics.node_count = static_cast<std::uint64_t>(sc.nodes_per_dodag);
  out.fully_formed = r.formed;
  return out;
}

std::vector<campaign::GridPoint> formation_grid() {
  // The scheduler axis is the registry, not a hard-coded pair: a newly
  // registered SF shows up in this bench with zero edits here.
  std::vector<campaign::GridPoint> grid;
  for (const int nodes : {4, 7, 9}) {
    for (const std::string& scheduler : SfRegistry::instance().names()) {
      campaign::GridPoint g;
      g.index = grid.size();
      g.label = "nodes=" + std::to_string(nodes) + " scheduler=" + scheduler;
      g.coords = {{"nodes", std::to_string(nodes)}, {"scheduler", scheduler}};
      g.config.scheduler = scheduler;
      g.config.dodag_count = 1;
      g.config.nodes_per_dodag = nodes;
      g.config.traffic_ppm = 0.0;
      grid.push_back(std::move(g));
    }
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string error;

  campaign::CampaignOptions options;
  std::vector<std::uint64_t> seeds = {500, 507, 514};
  if (flags.has("seeds")) {
    if (!campaign::parse_seeds(flags.get("seeds", ""), &seeds, &error)) {
      std::fprintf(stderr, "formation_time: --seeds: %s\n", error.c_str());
      return 2;
    }
  }
  if (!campaign::parse_campaign_flags(flags, &options, &error)) {
    std::fprintf(stderr, "formation_time: %s\n", error.c_str());
    return 2;
  }
  std::vector<campaign::GridPoint> grid = formation_grid();
  // Base-config overrides (shared --set grammar, figure_common.hpp) —
  // e.g. trace_kind=random-walk to measure formation under mobility, or
  // radio_range/hop_distance to stress the geometry. Read before the
  // unknown-flag check so --set registers as a known flag.
  if (!bench::apply_set_overrides(flags.get("set", ""), &grid, &error)) {
    std::fprintf(stderr, "formation_time: --set: %s\n", error.c_str());
    return 2;
  }

  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    std::fprintf(stderr, "formation_time: unknown flag --%s\n", flag.c_str());
    return 2;
  }
  options.runner.run_fn = run_formation_job;
  campaign::CampaignResult result;
  if (!campaign::run_points_campaign(grid, seeds, options, &result, &error)) {
    std::fprintf(stderr, "formation_time: %s\n", error.c_str());
    return result.error_kind == campaign::CampaignErrorKind::kIo ? 1 : 2;
  }
  if (result.jobs_skipped > 0) {
    std::fprintf(stderr, "[bench] resumed: %zu jobs from journal, %zu run now\n",
                 result.jobs_skipped, result.jobs_run);
  }

  std::printf("Formation time (s until the LAST node reaches each stage; "
              "<=%d s budget; mean ±stddev over seeds)\n\n",
              static_cast<int>(kBudgetSeconds));
  auto cell = [](const campaign::SampleStats& s, bool applicable = true) {
    if (!applicable || s.n == 0) return std::string("-");  // other shard / Orchestra
    std::string text = TablePrinter::num(s.mean, 1);
    if (s.n > 1) text += " ±" + TablePrinter::num(s.stddev, 1);
    return text;
  };
  TablePrinter t({"nodes", "scheduler", "assoc", "RPL joined", "SF operational"});
  for (const auto& agg : result.aggregates) {
    if (agg.coords.size() < 2) continue;  // point owned by another shard
    t.add_row({agg.coords[0].second, scheduler_name(agg.coords[1].second),
               cell(agg.pdr_percent), cell(agg.avg_delay_ms),
               cell(agg.p95_delay_ms)});
  }
  t.print();
  std::printf("\nMetric slots: assoc -> pdr_percent, joined -> avg_delay_ms, "
              "operational -> p95_delay_ms (for --metric / CSV columns).\n"
              "Negotiating SFs (GT-TSCH, e-MSF) pay an extra bootstrap stage\n"
              "beyond RPL join; association dominates for the autonomous ones.\n");

  if (!out_prefix.empty()) {
    const std::string csv_path = out_prefix + ".csv";
    const std::string json_path = out_prefix + ".json";
    if (!campaign::write_csv(csv_path, result.aggregates) ||
        !campaign::write_json(json_path, result.aggregates)) {
      std::fprintf(stderr, "formation_time: failed to write artifacts at %s.{csv,json}\n",
                   out_prefix.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s and %s\n", csv_path.c_str(), json_path.c_str());
  }
  return result.cancelled ? 1 : 0;
}
