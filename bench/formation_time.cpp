// Bench: network-formation dynamics (the concern of Vallati et al. [32],
// discussed in the paper's related work). Measures, for both schedulers,
// when every node has (a) associated to TSCH, (b) acquired an RPL parent,
// and — GT-TSCH only — (c) completed the 6P bootstrap to Operational.
#include <cstdio>

#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "util/table.hpp"

namespace {

using namespace gttsch;
using namespace gttsch::literals;

struct FormationResult {
  double assoc_s = -1;        ///< last node associated
  double joined_s = -1;       ///< last node joined RPL
  double operational_s = -1;  ///< last GT node operational (GT only)
};

FormationResult measure(SchedulerKind kind, int nodes, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.scheduler = kind;
  sc.traffic_ppm = 0.0;  // formation only
  auto nc = sc.make_node_config();
  nc.app_rate_ppm = 0.0;

  const auto topo = build_dodag(1, {0, 0}, nodes, 30.0);
  Network net(seed, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, nc, nullptr);
  net.start();

  FormationResult r;
  for (int t = 1; t <= 600; ++t) {
    net.sim().run_until(static_cast<TimeUs>(t) * 1000000);
    bool all_assoc = true, all_joined = true, all_oper = true;
    for (const auto& [id, node] : net.nodes()) {
      if (node->is_root()) continue;
      all_assoc &= node->mac().associated();
      all_joined &= node->rpl().joined();
      if (auto* sf = node->gt_sf())
        all_oper &= sf->stage() == GtTschSf::Stage::kOperational;
    }
    if (r.assoc_s < 0 && all_assoc) r.assoc_s = t;
    if (r.joined_s < 0 && all_joined) r.joined_s = t;
    if (kind == SchedulerKind::kGtTsch && r.operational_s < 0 && all_oper)
      r.operational_s = t;
    if (r.joined_s >= 0 && (kind != SchedulerKind::kGtTsch || r.operational_s >= 0)) break;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("Formation time (s until the LAST node reaches each stage; "
              "<=600 s budget, 0 = never)\n\n");
  TablePrinter t({"nodes", "scheduler", "assoc", "RPL joined", "GT operational"});
  for (const int nodes : {4, 7, 9}) {
    for (const SchedulerKind kind : {SchedulerKind::kGtTsch, SchedulerKind::kOrchestra}) {
      double assoc = 0, joined = 0, oper = 0;
      const int seeds = 3;
      for (int s = 0; s < seeds; ++s) {
        const auto r = measure(kind, nodes, 500 + 7ull * s);
        assoc += r.assoc_s > 0 ? r.assoc_s : 600;
        joined += r.joined_s > 0 ? r.joined_s : 600;
        oper += r.operational_s > 0 ? r.operational_s : 0;
      }
      t.add_row({TablePrinter::num(static_cast<std::int64_t>(nodes)),
                 scheduler_name(kind), TablePrinter::num(assoc / seeds, 1),
                 TablePrinter::num(joined / seeds, 1),
                 kind == SchedulerKind::kGtTsch ? TablePrinter::num(oper / seeds, 1)
                                                : std::string("-")});
    }
  }
  t.print();
  std::printf("\nGT-TSCH's extra stage (ASK-CHANNEL + 6P bootstrap) costs little\n"
              "beyond RPL join; association dominates for both schedulers.\n");
  return 0;
}
