// Fig 8 (a-f): GT-TSCH vs Orchestra as per-node traffic grows
// 30 -> 165 ppm on the 14-node / 2-DODAG network (Section VIII, set 1).
// Seeds parallelize on the campaign pool and the run shards/resumes like
// any campaign (--shard i/N, --journal/--resume, --ci-rel adaptive
// seeding); see run_figure for the full flag list.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::bench;

  std::printf("Fig 8 — performance vs traffic load "
              "(2 DODAGs, 14 nodes, slotframe 32 / unicast 8)\n");

  std::vector<SweepPoint> points;
  for (const double ppm : {30.0, 75.0, 120.0, 165.0}) {
    SweepPoint p;
    p.label = TablePrinter::num(static_cast<std::int64_t>(ppm));
    p.gt = paper_base("gt-tsch");
    p.gt.traffic_ppm = ppm;
    p.orchestra = paper_base("orchestra");
    p.orchestra.traffic_ppm = ppm;
    points.push_back(std::move(p));
  }

  return run_figure(argc, argv, "Fig 8", "Traffic load (ppm/node)", points);
}
