// Fig 10 (a-f): sensitivity to the unicast slotframe length 8 -> 20
// (Section VIII, set 3). Per the paper's fairness rule, the GT-TSCH
// slotframe is four times Orchestra's unicast slotframe.
// Seeds parallelize on the campaign pool and the run shards/resumes like
// any campaign (--shard i/N, --journal/--resume, --ci-rel adaptive
// seeding); see run_figure for the full flag list.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::bench;

  std::printf("Fig 10 — performance vs unicast slotframe length "
              "(GT-TSCH slotframe = 4x, 120 ppm/node)\n");

  std::vector<SweepPoint> points;
  for (const int len : {8, 12, 16, 20}) {
    SweepPoint p;
    p.label = TablePrinter::num(static_cast<std::int64_t>(len));
    p.gt = paper_base("gt-tsch");
    p.gt.gt_slotframe_length = static_cast<std::uint16_t>(4 * len);
    p.orchestra = paper_base("orchestra");
    p.orchestra.orchestra_unicast_length = static_cast<std::uint16_t>(len);
    points.push_back(std::move(p));
  }

  return run_figure(argc, argv, "Fig 10", "Unicast slotframe length", points);
}
