// Microbenchmarks for the game machinery: closed-form solve (runs every
// monitor tick on a Cortex-M3 in the real system — must be cheap),
// best-response dynamics, and the Nash verification helpers.
#include <benchmark/benchmark.h>

#include "core/game/nash.hpp"
#include "core/game/solver.hpp"

namespace {

using namespace gttsch;
using namespace gttsch::game;

PlayerState make_player(int i) {
  PlayerState p;
  p.rank = 256.0 + 256.0 * (1 + i % 4);
  p.rank_min = 256;
  p.min_step_of_rank = 256;
  p.etx = 1.0 + 0.37 * (i % 5);
  p.queue_avg = static_cast<double>(i % 16);
  p.queue_max = 16;
  p.l_tx_min = i % 3;
  p.l_rx_parent = 4 + i % 12;
  return p;
}

void BM_ClosedFormSolve(benchmark::State& state) {
  const Weights w{4, 1, 1};
  int i = 0;
  for (auto _ : state) {
    const PlayerState p = make_player(++i);
    benchmark::DoNotOptimize(optimal_tx_slots(w, p));
  }
}
BENCHMARK(BM_ClosedFormSolve);

void BM_IntegerSolve(benchmark::State& state) {
  const Weights w{4, 1, 1};
  int i = 0;
  for (auto _ : state) {
    const PlayerState p = make_player(++i);
    benchmark::DoNotOptimize(optimal_tx_slots_int(w, p));
  }
}
BENCHMARK(BM_IntegerSolve);

void BM_KktSolveAndVerify(benchmark::State& state) {
  const Weights w{4, 1, 1};
  int i = 0;
  for (auto _ : state) {
    const PlayerState p = make_player(++i);
    const KktPoint k = solve_kkt(w, p);
    benchmark::DoNotOptimize(kkt_satisfied(w, p, k));
  }
}
BENCHMARK(BM_KktSolveAndVerify);

void BM_BestResponseDynamics(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<PlayerState> players;
  players.reserve(n);
  for (int i = 0; i < n; ++i) players.push_back(make_player(i));
  TxAllocationGame game(Weights{4, 1, 1}, players);
  for (auto _ : state) {
    std::vector<double> init(n, 0.0);
    benchmark::DoNotOptimize(game.best_response_dynamics(std::move(init)));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BestResponseDynamics)->RangeMultiplier(4)->Range(4, 256)->Complexity();

void BM_CoupledBestResponse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<PlayerState> players;
  for (int i = 0; i < n; ++i) players.push_back(make_player(i));
  TxAllocationGame game(Weights{4, 1, 1}, players);
  for (auto _ : state) {
    std::vector<double> init(n, 0.0);
    benchmark::DoNotOptimize(
        game.best_response_dynamics(std::move(init), /*shared_capacity=*/n * 2.0));
  }
}
BENCHMARK(BM_CoupledBestResponse)->Arg(8)->Arg(64);

void BM_NashVerification(benchmark::State& state) {
  std::vector<PlayerState> players;
  for (int i = 0; i < 16; ++i) players.push_back(make_player(i));
  TxAllocationGame game(Weights{4, 1, 1}, players);
  const auto eq = game.closed_form_equilibrium();
  for (auto _ : state) benchmark::DoNotOptimize(game.is_nash(eq, 16));
}
BENCHMARK(BM_NashVerification);

}  // namespace
