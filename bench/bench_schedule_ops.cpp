// Microbenchmarks for schedule operations: cell lookup per slot (the MAC
// hot path: once per 15 ms per node), cell add/remove, and the Section V
// placement search used in every 6P ADD.
#include <benchmark/benchmark.h>

#include "core/channel_alloc.hpp"
#include "core/slotframe_layout.hpp"
#include "core/tx_alloc.hpp"
#include "mac/schedule.hpp"

namespace {

using namespace gttsch;

void build_schedule(TschSchedule& s, int cells) {  // TschSchedule is non-copyable
  auto& sf = s.add_slotframe(0, 101);
  for (int i = 0; i < cells; ++i) {
    Cell c;
    c.slot_offset = static_cast<std::uint16_t>((i * 13) % 101);
    c.channel_offset = static_cast<ChannelOffset>(i % 8);
    c.options = (i % 2) ? kCellTx : kCellRx;
    c.neighbor = static_cast<NodeId>(i % 6);
    sf.add(c);
  }
}

void BM_ActiveCellLookup(benchmark::State& state) {
  TschSchedule sched;
  build_schedule(sched, static_cast<int>(state.range(0)));
  Asn asn = 0;
  for (auto _ : state) benchmark::DoNotOptimize(sched.active_cells(++asn));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActiveCellLookup)->Arg(8)->Arg(32)->Arg(96);

void BM_CellAddRemove(benchmark::State& state) {
  Slotframe sf(0, 101);
  Cell c;
  c.slot_offset = 50;
  c.channel_offset = 3;
  c.options = kCellTx;
  c.neighbor = 9;
  for (auto _ : state) {
    sf.add(c);
    sf.remove(c);
  }
}
BENCHMARK(BM_CellAddRemove);

void BM_PlaceRxSearch(benchmark::State& state) {
  const SlotframeLayout layout({32, 4, 3});
  Slotframe sf(0, 32);
  for (std::uint16_t o : {3, 9, 14, 20, 26}) {
    Cell c;
    c.slot_offset = o;
    c.channel_offset = 1;
    c.options = kCellTx;
    c.neighbor = 1;
    sf.add(c);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(TxSlotAllocator::place_rx(sf, layout, 7, 3, false));
}
BENCHMARK(BM_PlaceRxSearch);

void BM_GrantableRx(benchmark::State& state) {
  const SlotframeLayout layout({static_cast<std::uint16_t>(state.range(0)),
                                static_cast<std::uint16_t>(state.range(0) / 8), 3});
  Slotframe sf(0, static_cast<std::uint16_t>(state.range(0)));
  Cell c;
  c.channel_offset = 1;
  c.options = kCellTx;
  c.neighbor = 1;
  for (std::uint16_t o : layout.negotiable_offsets()) {
    if (o % 3 == 0) {
      c.slot_offset = o;
      sf.add(c);
    }
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(TxSlotAllocator::grantable_rx(sf, layout, false));
}
BENCHMARK(BM_GrantableRx)->Arg(32)->Arg(80);

void BM_ChannelAssignment(benchmark::State& state) {
  ChannelAllocator alloc(8, 0);
  const std::vector<ChannelOffset> siblings{3, 4, 5};
  for (auto _ : state)
    benchmark::DoNotOptimize(alloc.assign_child_family_channel(1, 2, siblings));
}
BENCHMARK(BM_ChannelAssignment);

}  // namespace
