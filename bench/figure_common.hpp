// Shared plumbing for the figure-reproduction harnesses: runs both
// schedulers over a sweep and prints the six panels of the paper's
// figures (PDR, delay, packet loss, duty cycle, queue loss, throughput).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "util/table.hpp"

namespace gttsch::bench {

struct SweepPoint {
  std::string label;         ///< x-axis value as printed
  ScenarioConfig gt;         ///< configured for GT-TSCH
  ScenarioConfig orchestra;  ///< configured for Orchestra
};

struct PanelRow {
  std::string x;
  RunMetrics gt;
  RunMetrics orchestra;
};

inline std::vector<PanelRow> run_sweep(const std::vector<SweepPoint>& points,
                                       const std::vector<std::uint64_t>& seeds) {
  std::vector<PanelRow> rows;
  for (const auto& p : points) {
    std::fprintf(stderr, "[bench] point %s: GT-TSCH...\n", p.label.c_str());
    const auto gt = run_averaged(p.gt, seeds);
    std::fprintf(stderr, "[bench] point %s: Orchestra...\n", p.label.c_str());
    const auto orch = run_averaged(p.orchestra, seeds);
    rows.push_back(PanelRow{p.label, gt.mean, orch.mean});
  }
  return rows;
}

inline void print_panels(const char* figure, const char* x_name,
                         const std::vector<PanelRow>& rows) {
  struct Panel {
    const char* title;
    double RunMetrics::*field;
    int precision;
  };
  const Panel panels[] = {
      {"(a) Packet delivery ratio (%)", &RunMetrics::pdr_percent, 1},
      {"(b) Average end-to-end delay per packet (ms)", &RunMetrics::avg_delay_ms, 0},
      {"(c) Average number of lost packets (packet/minute)", &RunMetrics::loss_per_minute, 1},
      {"(d) Average radio duty cycle per node (%)", &RunMetrics::duty_cycle_percent, 2},
      {"(e) Average queue loss per node", &RunMetrics::queue_loss_per_node, 1},
      {"(f) Received packets per minute", &RunMetrics::throughput_per_minute, 0},
  };
  for (const auto& panel : panels) {
    std::printf("\n%s — %s\n", figure, panel.title);
    TablePrinter t({x_name, "GT-TSCH", "Orchestra"});
    for (const auto& row : rows)
      t.add_row({row.x, TablePrinter::num(row.gt.*panel.field, panel.precision),
                 TablePrinter::num(row.orchestra.*panel.field, panel.precision)});
    t.print();
  }
  std::printf("\n%s — diagnostics (generated/delivered per run-average)\n", figure);
  TablePrinter t({x_name, "GT gen", "GT dlv", "GT join", "Or gen", "Or dlv", "Or join"});
  for (const auto& row : rows)
    t.add_row({row.x, TablePrinter::num(static_cast<std::int64_t>(row.gt.generated)),
               TablePrinter::num(static_cast<std::int64_t>(row.gt.delivered)),
               TablePrinter::num(static_cast<std::int64_t>(row.gt.nodes_joined)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.generated)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.delivered)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.nodes_joined))});
  t.print();
}

/// Shared base configuration for the paper's evaluation (Section VIII).
inline ScenarioConfig paper_base(SchedulerKind kind) {
  using namespace literals;
  ScenarioConfig c;
  c.scheduler = kind;
  c.dodag_count = 2;
  c.nodes_per_dodag = 7;  // 14 nodes total
  c.traffic_ppm = 120.0;
  c.gt_slotframe_length = 32;
  c.orchestra_unicast_length = 8;
  c.warmup = 180_s;
  c.measure = 300_s;
  return c;
}

}  // namespace gttsch::bench
