// Shared plumbing for the figure-reproduction harnesses: runs both
// schedulers over a sweep on the campaign engine and prints the six
// panels of the paper's figures (PDR, delay, packet loss, duty cycle,
// queue loss, throughput) as mean ±stddev across seeds.
//
// Parallelism: every (sweep point, scheduler, seed) combination is one
// campaign job; GTTSCH_JOBS overrides the worker count (default: hardware
// concurrency). Results are bit-identical to a serial run.
//
// Scale-out: the harnesses expose the campaign engine's sharding
// (--shard i/N), crash-safe journaling (--journal / --resume) and
// CI-driven adaptive seeding (--ci-rel / --max-seeds); per-shard
// journals merge with `gt_campaign merge`.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace gttsch::bench {

struct SweepPoint {
  std::string label;         ///< x-axis value as printed
  ScenarioConfig gt;         ///< configured for GT-TSCH
  ScenarioConfig orchestra;  ///< configured for Orchestra
};

struct PanelRow {
  std::string x;
  campaign::PointAggregate gt;
  campaign::PointAggregate orchestra;
};

/// The sweep as campaign grid points: 2i is GT-TSCH and 2i+1 Orchestra
/// for sweep point i, labelled/coordinated so journals and CSV artifacts
/// are self-describing.
inline std::vector<campaign::GridPoint> sweep_grid(
    const std::vector<SweepPoint>& points, const char* x_name) {
  std::vector<campaign::GridPoint> grid;
  grid.reserve(points.size() * 2);
  for (const SweepPoint& point : points) {
    for (const ScenarioConfig* config : {&point.gt, &point.orchestra}) {
      const char* scheduler = (config == &point.gt) ? "gt-tsch" : "orchestra";
      campaign::GridPoint g;
      g.index = grid.size();
      g.label = std::string(x_name) + '=' + point.label + " scheduler=" + scheduler;
      g.coords = {{x_name, point.label}, {"scheduler", scheduler}};
      g.config = *config;
      grid.push_back(std::move(g));
    }
  }
  return grid;
}

/// Runs the sweep on the campaign engine. `options.runner.on_progress`
/// is overridden with the bench progress line unless already set.
inline std::vector<PanelRow> run_sweep(const std::vector<SweepPoint>& points,
                                       const std::vector<std::uint64_t>& seeds,
                                       campaign::CampaignOptions options,
                                       const char* x_name,
                                       campaign::CampaignResult* result_out,
                                       std::string* error) {
  const std::vector<campaign::GridPoint> grid = sweep_grid(points, x_name);

  if (!options.runner.on_progress) {
    options.runner.on_progress = [&points](const campaign::Progress& p) {
      const SweepPoint& point = points[p.job->point_index / 2];
      std::fprintf(stderr, "[bench] %zu/%zu: point %s %s seed #%zu done\n",
                   p.completed, p.total, point.label.c_str(),
                   p.job->point_index % 2 == 0 ? "GT-TSCH" : "Orchestra",
                   p.job->seed_index);
    };
  }

  campaign::CampaignResult result;
  if (!campaign::run_points_campaign(grid, seeds, options, &result, error)) {
    if (result_out != nullptr) *result_out = std::move(result);  // error_kind
    return {};
  }

  std::vector<PanelRow> rows;
  rows.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    rows.push_back(PanelRow{points[i].label, result.aggregates[2 * i],
                            result.aggregates[2 * i + 1]});
  }
  if (result_out != nullptr) *result_out = std::move(result);
  return rows;
}

inline void print_panels(const char* figure, const char* x_name,
                         const std::vector<PanelRow>& rows) {
  struct Panel {
    const char* title;
    campaign::SampleStats campaign::PointAggregate::*field;
    int precision;
  };
  const Panel panels[] = {
      {"(a) Packet delivery ratio (%)", &campaign::PointAggregate::pdr_percent, 1},
      {"(b) Average end-to-end delay per packet (ms)",
       &campaign::PointAggregate::avg_delay_ms, 0},
      {"(c) Average number of lost packets (packet/minute)",
       &campaign::PointAggregate::loss_per_minute, 1},
      {"(d) Average radio duty cycle per node (%)",
       &campaign::PointAggregate::duty_cycle_percent, 2},
      {"(e) Average queue loss per node",
       &campaign::PointAggregate::queue_loss_per_node, 1},
      {"(f) Received packets per minute",
       &campaign::PointAggregate::throughput_per_minute, 0},
  };
  auto cell = [](const campaign::SampleStats& s, int precision) {
    if (s.n == 0) return std::string("-");  // other shard's point
    std::string text = TablePrinter::num(s.mean, precision);
    if (s.n > 1) text += " ±" + TablePrinter::num(s.stddev, precision);
    return text;
  };
  for (const auto& panel : panels) {
    std::printf("\n%s — %s (mean ±stddev over seeds)\n", figure, panel.title);
    TablePrinter t({x_name, "GT-TSCH", "Orchestra"});
    for (const auto& row : rows)
      t.add_row({row.x, cell(row.gt.*panel.field, panel.precision),
                 cell(row.orchestra.*panel.field, panel.precision)});
    t.print();
  }
  std::printf("\n%s — diagnostics (generated/delivered per run-average)\n", figure);
  TablePrinter t({x_name, "GT gen", "GT dlv", "GT join", "Or gen", "Or dlv", "Or join"});
  for (const auto& row : rows)
    t.add_row({row.x,
               TablePrinter::num(static_cast<std::int64_t>(row.gt.mean.generated)),
               TablePrinter::num(static_cast<std::int64_t>(row.gt.mean.delivered)),
               TablePrinter::num(static_cast<std::int64_t>(row.gt.mean.nodes_joined)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.mean.generated)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.mean.delivered)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.mean.nodes_joined))});
  t.print();
}

/// Core of the `--set "field=v;field2=v"` passthrough (the gt_campaign
/// base-config grammar): parse + one-value/duplicate-key checks, then hand
/// each (field, value) pair to `apply`, which writes it into every config
/// the harness owns. The overloads below cover the two bench grid shapes
/// so the flag's behavior cannot drift between harnesses.
template <typename ApplyFn>
inline bool apply_set_overrides_impl(const std::string& spec, const ApplyFn& apply,
                                     std::string* error) {
  std::vector<campaign::Axis> overrides;
  if (!campaign::parse_grid(spec, &overrides, error)) return false;
  std::set<std::string> seen;
  for (const campaign::Axis& o : overrides) {
    if (o.values.size() != 1) {
      *error = o.field + ": exactly one value expected";
      return false;
    }
    if (!seen.insert(o.field).second) {
      *error = o.field + ": key appears twice";
      return false;
    }
    if (!apply(o.field, o.values.front(), error)) return false;
  }
  return true;
}

/// Figure-bench shape: every sweep point's GT and Orchestra configs — the
/// hook that lets the fig benches take the trace/topology fields without
/// bespoke flags.
inline bool apply_set_overrides(const std::string& spec,
                                std::vector<SweepPoint>* points, std::string* error) {
  return apply_set_overrides_impl(
      spec,
      [points](const std::string& field, const std::string& value, std::string* e) {
        for (SweepPoint& point : *points) {
          if (!campaign::apply_field(point.gt, field, value, e) ||
              !campaign::apply_field(point.orchestra, field, value, e)) {
            return false;
          }
        }
        return true;
      },
      error);
}

/// Hand-built campaign-grid shape (formation_time).
inline bool apply_set_overrides(const std::string& spec,
                                std::vector<campaign::GridPoint>* grid,
                                std::string* error) {
  return apply_set_overrides_impl(
      spec,
      [grid](const std::string& field, const std::string& value, std::string* e) {
        for (campaign::GridPoint& point : *grid) {
          if (!campaign::apply_field(point.config, field, value, e)) return false;
        }
        return true;
      },
      error);
}

/// Entry point shared by the figure harnesses. Flags:
///   --jobs N, --seeds LIST, --out PREFIX        (as before)
///   --set SPEC                                  base-config overrides applied
///                                               to every sweep point (e.g.
///                                               "trace_kind=random-walk;trace_movers=4")
///   --shard i/N                                 run one shard of the sweep
///   --journal PATH, --resume PATH               checkpoint / crash recovery
///   --ci-rel FRAC, --max-seeds N, --min-seeds N, --batch N, --metric NAME
///                                               adaptive seeding
/// Returns the process exit code (0 ok, 1 runtime failure, 2 bad usage).
inline int run_figure(int argc, char** argv, const char* figure,
                      const char* x_name, const std::vector<SweepPoint>& points_in) {
  Flags flags(argc, argv);
  std::string error;

  std::vector<SweepPoint> points = points_in;
  if (!apply_set_overrides(flags.get("set", ""), &points, &error)) {
    std::fprintf(stderr, "%s: --set: %s\n", figure, error.c_str());
    return 2;
  }

  campaign::CampaignOptions options;
  std::vector<std::uint64_t> seeds = default_seeds();
  if (flags.has("seeds")) {
    if (!campaign::parse_seeds(flags.get("seeds", ""), &seeds, &error)) {
      std::fprintf(stderr, "%s: --seeds: %s\n", figure, error.c_str());
      return 2;
    }
  }
  if (!campaign::parse_campaign_flags(flags, &options, &error)) {
    std::fprintf(stderr, "%s: %s\n", figure, error.c_str());
    return 2;
  }
  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    std::fprintf(stderr, "%s: unknown flag --%s\n", figure, flag.c_str());
    return 2;
  }

  campaign::CampaignResult result;
  const std::vector<PanelRow> rows =
      run_sweep(points, seeds, options, x_name, &result, &error);
  if (rows.empty()) {
    std::fprintf(stderr, "%s: %s\n", figure, error.c_str());
    return result.error_kind == campaign::CampaignErrorKind::kIo ? 1 : 2;
  }
  if (result.jobs_skipped > 0) {
    std::fprintf(stderr, "[bench] resumed: %zu jobs from journal, %zu run now\n",
                 result.jobs_skipped, result.jobs_run);
  }
  print_panels(figure, x_name, rows);

  if (!out_prefix.empty()) {
    const std::string csv_path = out_prefix + ".csv";
    const std::string json_path = out_prefix + ".json";
    if (!campaign::write_csv(csv_path, result.aggregates) ||
        !campaign::write_json(json_path, result.aggregates)) {
      std::fprintf(stderr, "%s: failed to write artifacts at %s.{csv,json}\n",
                   figure, out_prefix.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s and %s\n", csv_path.c_str(),
                 json_path.c_str());
  }
  return result.cancelled ? 1 : 0;
}

/// Shared base configuration for the paper's evaluation (Section VIII).
inline ScenarioConfig paper_base(const std::string& kind) {
  using namespace literals;
  ScenarioConfig c;
  c.scheduler = kind;
  c.dodag_count = 2;
  c.nodes_per_dodag = 7;  // 14 nodes total
  c.traffic_ppm = 120.0;
  c.gt_slotframe_length = 32;
  c.orchestra_unicast_length = 8;
  c.warmup = 180_s;
  c.measure = 300_s;
  return c;
}

}  // namespace gttsch::bench
