// Shared plumbing for the figure-reproduction harnesses: runs both
// schedulers over a sweep on the campaign worker pool and prints the six
// panels of the paper's figures (PDR, delay, packet loss, duty cycle,
// queue loss, throughput) as mean ±stddev across seeds.
//
// Parallelism: every (sweep point, scheduler, seed) combination is one
// campaign job; GTTSCH_JOBS overrides the worker count (default: hardware
// concurrency). Results are bit-identical to a serial run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace gttsch::bench {

struct SweepPoint {
  std::string label;         ///< x-axis value as printed
  ScenarioConfig gt;         ///< configured for GT-TSCH
  ScenarioConfig orchestra;  ///< configured for Orchestra
};

struct PanelRow {
  std::string x;
  campaign::PointAggregate gt;
  campaign::PointAggregate orchestra;
};

inline std::vector<PanelRow> run_sweep(const std::vector<SweepPoint>& points,
                                       const std::vector<std::uint64_t>& seeds,
                                       int worker_count = 0) {
  // One job per (point, scheduler, seed); grid point 2i is GT-TSCH and
  // 2i+1 Orchestra for sweep point i.
  std::vector<campaign::Job> jobs;
  jobs.reserve(points.size() * 2 * seeds.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const ScenarioConfig* config : {&points[i].gt, &points[i].orchestra}) {
      const std::size_t point_index =
          2 * i + (config == &points[i].orchestra ? 1 : 0);
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        campaign::Job job;
        job.index = jobs.size();
        job.point_index = point_index;
        job.seed_index = s;
        job.config = *config;
        job.config.seed = seeds[s];
        jobs.push_back(std::move(job));
      }
    }
  }

  campaign::RunnerOptions options;
  options.jobs = worker_count;
  options.on_progress = [&points](const campaign::Progress& p) {
    const SweepPoint& point = points[p.job->point_index / 2];
    std::fprintf(stderr, "[bench] %zu/%zu: point %s %s seed #%zu done\n",
                 p.completed, p.total, point.label.c_str(),
                 p.job->point_index % 2 == 0 ? "GT-TSCH" : "Orchestra",
                 p.job->seed_index);
  };

  campaign::Runner runner(options);
  const campaign::Runner::Result run = runner.run(jobs);

  std::vector<campaign::PointAccumulator> accumulators(points.size() * 2);
  for (const campaign::Job& job : jobs) {
    accumulators[job.point_index].add(job.seed_index, run.results[job.index]);
  }

  std::vector<PanelRow> rows;
  rows.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    rows.push_back(PanelRow{points[i].label, accumulators[2 * i].finalize(),
                            accumulators[2 * i + 1].finalize()});
  }
  return rows;
}

inline void print_panels(const char* figure, const char* x_name,
                         const std::vector<PanelRow>& rows) {
  struct Panel {
    const char* title;
    campaign::SampleStats campaign::PointAggregate::*field;
    int precision;
  };
  const Panel panels[] = {
      {"(a) Packet delivery ratio (%)", &campaign::PointAggregate::pdr_percent, 1},
      {"(b) Average end-to-end delay per packet (ms)",
       &campaign::PointAggregate::avg_delay_ms, 0},
      {"(c) Average number of lost packets (packet/minute)",
       &campaign::PointAggregate::loss_per_minute, 1},
      {"(d) Average radio duty cycle per node (%)",
       &campaign::PointAggregate::duty_cycle_percent, 2},
      {"(e) Average queue loss per node",
       &campaign::PointAggregate::queue_loss_per_node, 1},
      {"(f) Received packets per minute",
       &campaign::PointAggregate::throughput_per_minute, 0},
  };
  auto cell = [](const campaign::SampleStats& s, int precision) {
    std::string text = TablePrinter::num(s.mean, precision);
    if (s.n > 1) text += " ±" + TablePrinter::num(s.stddev, precision);
    return text;
  };
  for (const auto& panel : panels) {
    std::printf("\n%s — %s (mean ±stddev over seeds)\n", figure, panel.title);
    TablePrinter t({x_name, "GT-TSCH", "Orchestra"});
    for (const auto& row : rows)
      t.add_row({row.x, cell(row.gt.*panel.field, panel.precision),
                 cell(row.orchestra.*panel.field, panel.precision)});
    t.print();
  }
  std::printf("\n%s — diagnostics (generated/delivered per run-average)\n", figure);
  TablePrinter t({x_name, "GT gen", "GT dlv", "GT join", "Or gen", "Or dlv", "Or join"});
  for (const auto& row : rows)
    t.add_row({row.x,
               TablePrinter::num(static_cast<std::int64_t>(row.gt.mean.generated)),
               TablePrinter::num(static_cast<std::int64_t>(row.gt.mean.delivered)),
               TablePrinter::num(static_cast<std::int64_t>(row.gt.mean.nodes_joined)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.mean.generated)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.mean.delivered)),
               TablePrinter::num(static_cast<std::int64_t>(row.orchestra.mean.nodes_joined))});
  t.print();
}

/// Entry point shared by the figure harnesses: parses --jobs N, --seeds
/// LIST and --out PREFIX (CSV/JSON artifacts), runs the sweep on the
/// campaign pool, prints the panels. Returns the process exit code.
inline int run_figure(int argc, char** argv, const char* figure,
                      const char* x_name, const std::vector<SweepPoint>& points) {
  Flags flags(argc, argv);
  // 0 = runner default: GTTSCH_JOBS, then hardware concurrency.
  const int jobs = static_cast<int>(flags.get_int("jobs", 0));
  std::vector<std::uint64_t> seeds = default_seeds();
  if (flags.has("seeds")) {
    std::string error;
    if (!campaign::parse_seeds(flags.get("seeds", ""), &seeds, &error)) {
      std::fprintf(stderr, "%s: --seeds: %s\n", figure, error.c_str());
      return 2;
    }
  }
  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    std::fprintf(stderr, "%s: unknown flag --%s\n", figure, flag.c_str());
    return 2;
  }

  const std::vector<PanelRow> rows = run_sweep(points, seeds, jobs);
  print_panels(figure, x_name, rows);

  if (!out_prefix.empty()) {
    std::vector<campaign::PointAggregate> aggregates;
    aggregates.reserve(rows.size() * 2);
    for (const PanelRow& row : rows) {
      for (const campaign::PointAggregate* a : {&row.gt, &row.orchestra}) {
        campaign::PointAggregate tagged = *a;
        const char* scheduler = (a == &row.gt) ? "gt-tsch" : "orchestra";
        tagged.label = std::string(x_name) + '=' + row.x + " scheduler=" + scheduler;
        tagged.coords = {{x_name, row.x}, {"scheduler", scheduler}};
        aggregates.push_back(std::move(tagged));
      }
    }
    const std::string csv_path = out_prefix + ".csv";
    const std::string json_path = out_prefix + ".json";
    if (!campaign::write_csv(csv_path, aggregates) ||
        !campaign::write_json(json_path, aggregates)) {
      std::fprintf(stderr, "%s: failed to write artifacts at %s.{csv,json}\n",
                   figure, out_prefix.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s and %s\n", csv_path.c_str(),
                 json_path.c_str());
  }
  return 0;
}

/// Shared base configuration for the paper's evaluation (Section VIII).
inline ScenarioConfig paper_base(SchedulerKind kind) {
  using namespace literals;
  ScenarioConfig c;
  c.scheduler = kind;
  c.dodag_count = 2;
  c.nodes_per_dodag = 7;  // 14 nodes total
  c.traffic_ppm = 120.0;
  c.gt_slotframe_length = 32;
  c.orchestra_unicast_length = 8;
  c.warmup = 180_s;
  c.measure = 300_s;
  return c;
}

}  // namespace gttsch::bench
