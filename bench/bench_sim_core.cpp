// Microbenchmarks for the simulation substrate: event queue throughput,
// medium delivery resolution, and end-to-end simulated-seconds-per-wall-
// second for formed GT-TSCH networks.
//
// Beyond the Google-Benchmark microbenches, this harness owns the repo's
// perf-trajectory baseline: a *multi-point* sweep over scenario classes —
//   sparse-7    7 nodes, slotframe 397 at 6TiSCH-minimal occupancy
//               (idle-slot-dominated; also run in GTTSCH_FORCE_PER_SLOT-
//               equivalent reference mode for the speedup ratio)
//   dense-50    50-node grid, denser schedule, heavier traffic
//   mobile-100  100-node random-disk mesh with a population of random-
//               walk movers (exercises the incremental medium cache)
//   nodes-200   200-node random-disk mesh over a full simulated hour
//   churn-100   100-node random-disk mesh under crashloop fault
//               injection (staggered fail -> revive cycles)
//   mobile-100-parallel / nodes-200-parallel
//               the mobility and scale points again with island-parallel
//               stepping (4 lanes), bypassing the core-count clamp so the
//               coordination cost is measured even on small runners; the
//               wall-clock ratio vs the sequential sibling is the repo's
//               parallel-speedup trajectory (perf_diff prints it)
// — written to BENCH_simcore.json so every later PR can be compared per
// scenario class (tools/perf_diff.py prints the delta table; CI's
// perf-smoke job runs it against the committed baseline).
//
// Flags (consumed before Google Benchmark sees argv):
//   --simcore-json[=PATH]  write the end-to-end baseline (default path
//                          BENCH_simcore.json) after the microbenches
//   --simcore-only         skip the microbenches (CI perf-smoke mode)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "phy/dynamic_link.hpp"
#include "phy/medium.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "scenario/trace.hpp"
#include "sim/simulator.hpp"
#include "stats/telemetry.hpp"
#include "util/rng.hpp"

namespace {

using namespace gttsch;
using namespace gttsch::literals;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(1);
    for (int i = 0; i < batch; ++i) sim.after((i * 7919) % 100000, [] {});
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Range(1 << 8, 1 << 14);

void BM_MediumBroadcastResolution(benchmark::State& state) {
  const int receivers = static_cast<int>(state.range(0));
  Simulator sim(3);
  Medium medium(sim, std::make_unique<UnitDiskModel>(100.0), Rng(3));
  std::vector<std::unique_ptr<Radio>> radios;
  radios.push_back(std::make_unique<Radio>(sim, medium, 0, Position{0, 0}));
  for (int i = 1; i <= receivers; ++i) {
    radios.push_back(std::make_unique<Radio>(sim, medium, static_cast<NodeId>(i),
                                             Position{static_cast<double>(i % 10), 1.0}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  for (auto _ : state) {
    for (int i = 1; i <= receivers; ++i) radios[static_cast<std::size_t>(i)]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
  }
  state.SetItemsProcessed(state.iterations() * receivers);
}
BENCHMARK(BM_MediumBroadcastResolution)->Arg(4)->Arg(16)->Arg(64);

void BM_MediumSingleMoveRefresh(benchmark::State& state) {
  // Cost of one Radio::set_position + cache refresh in a spread-out
  // field: O(degree) with the grid index, not O(n^2).
  const int nodes = static_cast<int>(state.range(0));
  Simulator sim(5);
  Medium medium(sim, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), Rng(5));
  std::vector<std::unique_ptr<Radio>> radios;
  Rng place(7);
  const double side = 30.0 * std::sqrt(static_cast<double>(nodes));
  for (int i = 0; i < nodes; ++i) {
    radios.push_back(std::make_unique<Radio>(
        sim, medium, static_cast<NodeId>(i),
        Position{place.uniform_double(0, side), place.uniform_double(0, side)}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  // Build the cache once, then move one node back and forth; each
  // busy-path touch (a transmission) refreshes the single dirty row.
  double dx = 1.0;
  for (auto _ : state) {
    radios[0]->set_position(Position{radios[0]->position().x + dx, 5.0});
    dx = -dx;
    radios[1]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
    radios[1]->turn_off();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumSingleMoveRefresh)->Arg(50)->Arg(200);

// ---------------------------------------------------------------------------
// The end-to-end multi-point baseline.
// ---------------------------------------------------------------------------

/// One scenario class of the perf baseline. Mobility rides on the shared
/// trace generator (config.trace_*), not bench-local walkers.
struct ScenarioPoint {
  const char* name;
  ScenarioConfig config;
  std::uint16_t broadcast_slots = 0;  ///< override; 0 = layout default
  TimeUs formation = 180_s;
  TimeUs measure = 600_s;
  bool with_per_slot = false;   ///< also time the per-slot reference
  bool with_telemetry = false;  ///< attach a Telemetry recorder to the run
  int parallel_lanes = 0;       ///< >1: island-parallel stepping, this many lanes
};

ScenarioPoint sparse7_point() {
  ScenarioPoint p;
  p.name = "sparse-7";
  p.config.scheduler = "gt-tsch";
  p.config.dodag_count = 1;
  p.config.nodes_per_dodag = 7;
  p.config.traffic_ppm = 30;
  p.config.gt_slotframe_length = 397;
  // 6TiSCH-minimal-style occupancy: 2 broadcast slots instead of the
  // default m/8 = 49, leaving ~98% of the 397 slots idle. The scant
  // beacons make formation slow — give it time before measuring.
  p.broadcast_slots = 2;
  p.formation = 600_s;
  p.measure = 3600_s;
  p.with_per_slot = true;
  return p;
}

// sparse-7 again, but with the full telemetry recorder attached (1 s gauge
// sampling, 4 probe senders). Comparing against sparse-7's fast_path numbers
// puts a price on observability; perf_diff tracks it like any other point.
ScenarioPoint telemetry_overhead_point() {
  ScenarioPoint p = sparse7_point();
  p.name = "telemetry-overhead";
  p.with_per_slot = false;
  p.with_telemetry = true;
  return p;
}

// The larger points run the default slotframe (length 32): GT-TSCH's
// channel-family bootstrap needs the denser beacon/shared-cell supply to
// actually form at these scales, and a formed network is what loads the
// medium, queues and schedule machinery the points are meant to stress.

ScenarioPoint dense50_point() {
  ScenarioPoint p;
  p.name = "dense-50";
  p.config.scheduler = "gt-tsch";
  p.config.topology = TopologyKind::kGrid;
  p.config.topology_nodes = 50;
  p.config.traffic_ppm = 60;
  p.formation = 600_s;
  p.measure = 600_s;
  return p;
}

ScenarioPoint mobile100_point() {
  ScenarioPoint p;
  p.name = "mobile-100";
  p.config.scheduler = "gt-tsch";
  p.config.topology = TopologyKind::kRandomDisk;
  p.config.topology_nodes = 100;
  p.config.disk_radius = 150.0;
  p.config.traffic_ppm = 30;
  // 20 random-walk movers from the shared trace generator (~5 m per 2 s
  // tick, the pace of the old bench-local walker).
  p.config.trace_kind = TraceKind::kRandomWalk;
  p.config.trace_seed = 90210;
  p.config.trace_movers = 20;
  p.config.trace_speed_mps = 2.5;
  p.config.trace_interval_s = 2.0;
  p.formation = 600_s;
  p.measure = 600_s;
  return p;
}

ScenarioPoint nodes200_point() {
  ScenarioPoint p;
  p.name = "nodes-200";
  p.config.scheduler = "gt-tsch";
  p.config.topology = TopologyKind::kRandomDisk;
  p.config.topology_nodes = 200;
  p.config.disk_radius = 220.0;
  p.config.traffic_ppm = 15;
  p.formation = 600_s;
  p.measure = 3600_s;
  return p;
}

// The scheduler zoo's non-GT cost profiles at dense-50 scale, so per-SF
// overheads (ALICE's per-slotframe cell rehash timers, e-MSF's 6P
// monitor) ride the perf trajectory like any other point. Appended after
// the historical points: their event counts must stay byte-identical.

ScenarioPoint alice50_point() {
  ScenarioPoint p = dense50_point();
  p.name = "alice-50";
  p.config.scheduler = "alice";
  return p;
}

ScenarioPoint emsf50_point() {
  ScenarioPoint p = dense50_point();
  p.name = "emsf-50";
  p.config.scheduler = "emsf";
  return p;
}

// Fault-injection at mobile-100 scale: ten crashers in staggered
// fail -> revive cycles from the crashloop generator, so kill/revive
// medium-cache invalidation and reboot-driven beacon scans ride the perf
// trajectory. Appended after the historical points: their event counts
// must stay byte-identical.
ScenarioPoint churn100_point() {
  ScenarioPoint p;
  p.name = "churn-100";
  p.config.scheduler = "gt-tsch";
  p.config.topology = TopologyKind::kRandomDisk;
  p.config.topology_nodes = 100;
  p.config.disk_radius = 150.0;
  p.config.traffic_ppm = 30;
  p.config.trace_kind = TraceKind::kCrashloop;
  p.config.trace_seed = 90210;
  p.config.trace_fail_count = 10;
  p.config.trace_fail_at_s = 660.0;  // five 120 s cycles across the window
  p.config.trace_interval_s = 2.0;
  p.formation = 600_s;
  p.measure = 600_s;
  return p;
}

// The mobility and scale points again under island-parallel stepping.
// Bit-identical results to the sequential siblings (the parallel tests
// prove it), so only the wall columns differ; the ratio against the
// sibling is the parallel-speedup trajectory. Four lanes regardless of
// the host's core count: unlike run_scenario, the bench does *not* clamp
// through available_island_workers, so a single-core runner still
// measures the coordination overhead instead of silently demoting to
// the sequential path.
ScenarioPoint mobile100_parallel_point() {
  ScenarioPoint p = mobile100_point();
  p.name = "mobile-100-parallel";
  p.parallel_lanes = 4;
  return p;
}

ScenarioPoint nodes200_parallel_point() {
  ScenarioPoint p = nodes200_point();
  p.name = "nodes-200-parallel";
  p.parallel_lanes = 4;
  return p;
}

struct EndToEnd {
  double wall_seconds = 0.0;
  double sim_per_wall = 0.0;
  std::uint64_t events = 0;
  std::size_t nodes = 0;
  std::size_t joined = 0;
};

/// Build + form the point's network (`per_slot` selects the reference
/// stepping mode), then time `measure` sim-seconds of steady state.
EndToEnd run_point(const ScenarioPoint& p, bool per_slot) {
  auto nc = p.config.make_node_config();
  nc.app_end = 0;
  nc.mac.per_slot_stepping = per_slot;
  if (p.broadcast_slots > 0) nc.sf.gt.layout.broadcast_slots = p.broadcast_slots;

  // The shared generator synthesizes the point's dynamics over the
  // measured window (the bench's formation/measure override the config's
  // paper-default timing).
  ScenarioConfig trace_config = p.config;
  trace_config.warmup = p.formation;
  trace_config.measure = p.measure;
  const TopologySpec topology = trace_config.make_topology();
  Trace trace;
  std::string trace_error;
  if (!trace_config.make_trace(topology, &trace, &trace_error)) {
    std::fprintf(stderr, "bench_sim_core: %s\n", trace_error.c_str());
    std::abort();
  }

  DynamicLinkModel* failures = nullptr;
  auto net = std::make_unique<Network>(
      42, scenario_link_model_factory(trace_config, trace, &failures), topology, nc,
      nullptr);
  TracePlayer player(*net, std::move(trace), failures);
  std::unique_ptr<Telemetry> telemetry;
  if (p.with_telemetry) {
    TelemetryConfig tc;
    tc.sample_period = 1_s;
    tc.probe_count = 4;
    tc.probe_period = 10_s;
    telemetry = std::make_unique<Telemetry>(tc);
    telemetry->default_probe_window(p.formation, p.formation + p.measure);
    telemetry->attach(*net, /*stats=*/nullptr);
  }
  if (p.parallel_lanes > 1 && !per_slot) {
    net->sim().set_parallel(p.parallel_lanes, &net->medium());
  }
  net->start();
  player.start();
  net->sim().run_until(p.formation);

  const std::uint64_t events_before = net->sim().events_processed();
  const auto wall_start = std::chrono::steady_clock::now();
  net->sim().run_until(p.formation + p.measure);
  const auto wall_end = std::chrono::steady_clock::now();

  EndToEnd r;
  r.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  r.sim_per_wall = us_to_s(p.measure) / (r.wall_seconds > 0 ? r.wall_seconds : 1e-9);
  r.events = net->sim().events_processed() - events_before;
  r.nodes = net->size();
  r.joined = net->joined_count();
  return r;
}

void print_mode_json(FILE* f, const char* key, const EndToEnd& r, bool trailing_comma) {
  std::fprintf(f,
               "      \"%s\": {\"wall_seconds\": %.6f,\n"
               "        \"sim_seconds_per_wall_second\": %.1f,\n"
               "        \"events_processed\": %llu}%s\n",
               key, r.wall_seconds, r.sim_per_wall,
               static_cast<unsigned long long>(r.events), trailing_comma ? "," : "");
}

bool write_simcore_json(const std::string& path) {
  const std::vector<ScenarioPoint> points = {
      sparse7_point(),   telemetry_overhead_point(), dense50_point(),
      mobile100_point(), nodes200_point(),           alice50_point(),
      emsf50_point(),    churn100_point(),           mobile100_parallel_point(),
      nodes200_parallel_point()};
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sim_core: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_core_end_to_end\",\n  \"scenarios\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScenarioPoint& p = points[i];
    const EndToEnd fast = run_point(p, /*per_slot=*/false);
    std::fprintf(f,
                 "    {\"name\": \"%s\",\n"
                 "      \"topology\": \"%s\", \"nodes\": %zu, \"joined\": %zu,\n"
                 "      \"slotframe_length\": %u, \"traffic_ppm\": %.0f,\n"
                 "      \"movers\": %d, \"parallel_lanes\": %d,\n"
                 "      \"measured_sim_seconds\": %.0f,\n",
                 p.name, topology_name(p.config.topology), fast.nodes, fast.joined,
                 p.config.gt_slotframe_length, p.config.traffic_ppm,
                 p.config.trace_kind == TraceKind::kNone ? 0 : p.config.trace_movers,
                 p.parallel_lanes, us_to_s(p.measure));
    if (p.with_per_slot) {
      const EndToEnd ref = run_point(p, /*per_slot=*/true);
      const double speedup =
          ref.wall_seconds / (fast.wall_seconds > 0 ? fast.wall_seconds : 1e-9);
      const double event_reduction = static_cast<double>(ref.events) /
                                     static_cast<double>(fast.events > 0 ? fast.events : 1);
      print_mode_json(f, "fast_path", fast, true);
      print_mode_json(f, "per_slot", ref, true);
      std::fprintf(f, "      \"speedup\": %.2f,\n      \"event_reduction\": %.2f}%s\n",
                   speedup, event_reduction, i + 1 < points.size() ? "," : "");
      std::printf("%-10s fast %.0f sim-s/wall-s (%llu events), per-slot %.0f "
                  "(%llu events) -> %.2fx speedup, %.2fx fewer events\n",
                  p.name, fast.sim_per_wall, static_cast<unsigned long long>(fast.events),
                  ref.sim_per_wall, static_cast<unsigned long long>(ref.events), speedup,
                  event_reduction);
    } else {
      print_mode_json(f, "fast_path", fast, false);
      std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
      std::printf("%-10s fast %.0f sim-s/wall-s (%llu events, %zu/%zu joined), "
                  "%.1f wall-s for %.0f sim-s\n",
                  p.name, fast.sim_per_wall, static_cast<unsigned long long>(fast.events),
                  fast.joined, fast.nodes, fast.wall_seconds, us_to_s(p.measure));
    }
    std::fflush(f);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool simcore_only = false;
  // Strip our flags before Google Benchmark validates argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--simcore-only") == 0) {
      simcore_only = true;
      if (json_path.empty()) json_path = "BENCH_simcore.json";
    } else if (std::strcmp(arg, "--simcore-json") == 0) {
      json_path = "BENCH_simcore.json";
    } else if (std::strncmp(arg, "--simcore-json=", 15) == 0) {
      // An empty value (e.g. an unset shell variable) falls back to the
      // default path rather than silently disabling the baseline.
      json_path = arg[15] != '\0' ? arg + 15 : "BENCH_simcore.json";
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!simcore_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  } else if (argc > 1) {
    // Google Benchmark never sees argv in this mode; reject leftovers
    // ourselves so a mistyped flag cannot silently change the output path.
    std::fprintf(stderr, "bench_sim_core: unrecognized flag %s\n", argv[1]);
    return 1;
  }
  if (!json_path.empty() && !write_simcore_json(json_path)) return 1;
  return 0;
}
