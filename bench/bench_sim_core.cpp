// Microbenchmarks for the simulation substrate: event queue throughput,
// medium delivery resolution, and end-to-end simulated-seconds-per-wall-
// second for a formed GT-TSCH network.
//
// Beyond the Google-Benchmark microbenches, this harness owns the repo's
// perf-trajectory baseline: it measures the sparse-schedule end-to-end
// scenario (7 nodes, slotframe length 397 at 6TiSCH-minimal-style
// occupancy — idle-slot-dominated) with the fast path on and in
// GTTSCH_FORCE_PER_SLOT-equivalent reference mode, and writes the numbers
// to BENCH_simcore.json so every later PR can be compared against it.
//
// Flags (consumed before Google Benchmark sees argv):
//   --simcore-json[=PATH]  write the end-to-end comparison (default path
//                          BENCH_simcore.json) after the microbenches
//   --simcore-only         skip the microbenches (CI perf-smoke mode)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "phy/medium.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace gttsch;
using namespace gttsch::literals;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(1);
    for (int i = 0; i < batch; ++i) sim.after((i * 7919) % 100000, [] {});
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Range(1 << 8, 1 << 14);

void BM_MediumBroadcastResolution(benchmark::State& state) {
  const int receivers = static_cast<int>(state.range(0));
  Simulator sim(3);
  Medium medium(sim, std::make_unique<UnitDiskModel>(100.0), Rng(3));
  std::vector<std::unique_ptr<Radio>> radios;
  radios.push_back(std::make_unique<Radio>(sim, medium, 0, Position{0, 0}));
  for (int i = 1; i <= receivers; ++i) {
    radios.push_back(std::make_unique<Radio>(sim, medium, static_cast<NodeId>(i),
                                             Position{static_cast<double>(i % 10), 1.0}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  for (auto _ : state) {
    for (int i = 1; i <= receivers; ++i) radios[static_cast<std::size_t>(i)]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
  }
  state.SetItemsProcessed(state.iterations() * receivers);
}
BENCHMARK(BM_MediumBroadcastResolution)->Arg(4)->Arg(16)->Arg(64);

/// The sparse-schedule end-to-end scenario shared by the wall-clock
/// benchmark and the BENCH_simcore.json baseline below.
ScenarioConfig sparse_scenario() {
  ScenarioConfig c;
  c.scheduler = SchedulerKind::kGtTsch;
  c.dodag_count = 1;
  c.nodes_per_dodag = 7;
  c.traffic_ppm = 30;
  c.gt_slotframe_length = 397;
  return c;
}

constexpr TimeUs kFormation = 180_s;
constexpr TimeUs kMeasureSim = 3600_s;

/// Build and form the sparse network (`per_slot` selects the reference
/// stepping mode) — shared by the wall-clock benchmark and the JSON
/// baseline so the two can never measure different scenarios.
std::unique_ptr<Network> make_sparse_network(bool per_slot) {
  const ScenarioConfig c = sparse_scenario();
  auto nc = c.make_node_config();
  nc.app_end = 0;
  nc.mac.per_slot_stepping = per_slot;
  // 6TiSCH-minimal-style occupancy: 2 broadcast slots instead of the
  // default m/8 = 49, leaving ~98% of the 397 slots idle.
  nc.gt.layout.broadcast_slots = 2;
  auto net = std::make_unique<Network>(
      42, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), c.make_topology(), nc, nullptr);
  net->start();
  net->sim().run_until(kFormation);
  return net;
}

struct EndToEnd {
  double wall_seconds = 0.0;
  double sim_per_wall = 0.0;
  std::uint64_t events = 0;
};

/// Form the sparse network, then time `kMeasureSim` of steady-state
/// simulation.
EndToEnd run_end_to_end(bool per_slot) {
  const std::unique_ptr<Network> net_ptr = make_sparse_network(per_slot);
  Network& net = *net_ptr;
  const std::uint64_t events_before = net.sim().events_processed();
  const auto wall_start = std::chrono::steady_clock::now();
  net.sim().run_until(kFormation + kMeasureSim);
  const auto wall_end = std::chrono::steady_clock::now();
  EndToEnd r;
  r.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  r.sim_per_wall = us_to_s(kMeasureSim) / (r.wall_seconds > 0 ? r.wall_seconds : 1e-9);
  r.events = net.sim().events_processed() - events_before;
  return r;
}

void BM_FullNetworkSimulatedMinute(benchmark::State& state) {
  // Cost of simulating one minute of a formed 7-node GT-TSCH network.
  for (auto _ : state) {
    state.PauseTiming();
    ScenarioConfig c;
    c.scheduler = SchedulerKind::kGtTsch;
    c.dodag_count = 1;
    c.nodes_per_dodag = 7;
    c.traffic_ppm = 60;
    auto nc = c.make_node_config();
    nc.app_end = 0;
    Network net(42, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), c.make_topology(),
                nc, nullptr);
    net.start();
    net.sim().run_until(180_s);  // formation
    state.ResumeTiming();
    net.sim().run_until(240_s);
    benchmark::DoNotOptimize(net.sim().events_processed());
  }
}
BENCHMARK(BM_FullNetworkSimulatedMinute)->Unit(benchmark::kMillisecond);

void BM_SparseNetworkSimulatedMinute(benchmark::State& state) {
  // One minute of the idle-slot-dominated scenario; range(0) == 1 forces
  // the per-slot reference so the skip ratio shows up in the report.
  const bool per_slot = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::unique_ptr<Network> net = make_sparse_network(per_slot);
    state.ResumeTiming();
    net->sim().run_until(kFormation + 60_s);
    benchmark::DoNotOptimize(net->sim().events_processed());
  }
}
BENCHMARK(BM_SparseNetworkSimulatedMinute)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("per_slot")
    ->Unit(benchmark::kMillisecond);

bool write_simcore_json(const std::string& path) {
  const EndToEnd fast = run_end_to_end(/*per_slot=*/false);
  const EndToEnd ref = run_end_to_end(/*per_slot=*/true);
  const double speedup =
      ref.wall_seconds / (fast.wall_seconds > 0 ? fast.wall_seconds : 1e-9);
  const double event_reduction = static_cast<double>(ref.events) /
                                 static_cast<double>(fast.events > 0 ? fast.events : 1);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sim_core: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"sim_core_end_to_end\",\n"
               "  \"scenario\": {\"scheduler\": \"gt-tsch\", \"nodes\": 7,\n"
               "               \"slotframe_length\": 397, \"broadcast_slots\": 2,\n"
               "               \"traffic_ppm\": 30, \"measured_sim_seconds\": %.0f},\n"
               "  \"fast_path\": {\"wall_seconds\": %.6f,\n"
               "                \"sim_seconds_per_wall_second\": %.1f,\n"
               "                \"events_processed\": %llu},\n"
               "  \"per_slot\": {\"wall_seconds\": %.6f,\n"
               "               \"sim_seconds_per_wall_second\": %.1f,\n"
               "               \"events_processed\": %llu},\n"
               "  \"speedup\": %.2f,\n"
               "  \"event_reduction\": %.2f\n"
               "}\n",
               us_to_s(kMeasureSim), fast.wall_seconds, fast.sim_per_wall,
               static_cast<unsigned long long>(fast.events), ref.wall_seconds,
               ref.sim_per_wall, static_cast<unsigned long long>(ref.events),
               speedup, event_reduction);
  std::fclose(f);
  std::printf("sparse end-to-end: fast path %.0f sim-s/wall-s (%llu events), "
              "per-slot %.0f sim-s/wall-s (%llu events) -> %.2fx speedup, "
              "%.2fx fewer events; wrote %s\n",
              fast.sim_per_wall, static_cast<unsigned long long>(fast.events),
              ref.sim_per_wall, static_cast<unsigned long long>(ref.events), speedup,
              event_reduction, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool simcore_only = false;
  // Strip our flags before Google Benchmark validates argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--simcore-only") == 0) {
      simcore_only = true;
      if (json_path.empty()) json_path = "BENCH_simcore.json";
    } else if (std::strcmp(arg, "--simcore-json") == 0) {
      json_path = "BENCH_simcore.json";
    } else if (std::strncmp(arg, "--simcore-json=", 15) == 0) {
      // An empty value (e.g. an unset shell variable) falls back to the
      // default path rather than silently disabling the baseline.
      json_path = arg[15] != '\0' ? arg + 15 : "BENCH_simcore.json";
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!simcore_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  } else if (argc > 1) {
    // Google Benchmark never sees argv in this mode; reject leftovers
    // ourselves so a mistyped flag cannot silently change the output path.
    std::fprintf(stderr, "bench_sim_core: unrecognized flag %s\n", argv[1]);
    return 1;
  }
  if (!json_path.empty() && !write_simcore_json(json_path)) return 1;
  return 0;
}
