// Microbenchmarks for the simulation substrate: event queue throughput,
// medium delivery resolution, and end-to-end simulated-seconds-per-wall-
// second for a formed 7-node GT-TSCH network.
#include <benchmark/benchmark.h>

#include "phy/medium.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace gttsch;
using namespace gttsch::literals;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(1);
    for (int i = 0; i < batch; ++i) sim.after((i * 7919) % 100000, [] {});
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Range(1 << 8, 1 << 14);

void BM_MediumBroadcastResolution(benchmark::State& state) {
  const int receivers = static_cast<int>(state.range(0));
  Simulator sim(3);
  Medium medium(sim, std::make_unique<UnitDiskModel>(100.0), Rng(3));
  std::vector<std::unique_ptr<Radio>> radios;
  radios.push_back(std::make_unique<Radio>(sim, medium, 0, Position{0, 0}));
  for (int i = 1; i <= receivers; ++i) {
    radios.push_back(std::make_unique<Radio>(sim, medium, static_cast<NodeId>(i),
                                             Position{static_cast<double>(i % 10), 1.0}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  for (auto _ : state) {
    for (int i = 1; i <= receivers; ++i) radios[static_cast<std::size_t>(i)]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
  }
  state.SetItemsProcessed(state.iterations() * receivers);
}
BENCHMARK(BM_MediumBroadcastResolution)->Arg(4)->Arg(16)->Arg(64);

void BM_FullNetworkSimulatedMinute(benchmark::State& state) {
  // Cost of simulating one minute of a formed 7-node GT-TSCH network.
  for (auto _ : state) {
    state.PauseTiming();
    ScenarioConfig c;
    c.scheduler = SchedulerKind::kGtTsch;
    c.dodag_count = 1;
    c.nodes_per_dodag = 7;
    c.traffic_ppm = 60;
    auto nc = c.make_node_config();
    nc.app_end = 0;
    Network net(42, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), c.make_topology(),
                nc, nullptr);
    net.start();
    net.sim().run_until(180_s);  // formation
    state.ResumeTiming();
    net.sim().run_until(240_s);
    benchmark::DoNotOptimize(net.sim().events_processed());
  }
}
BENCHMARK(BM_FullNetworkSimulatedMinute)->Unit(benchmark::kMillisecond);

}  // namespace
