// Ablation: payoff weights alpha/beta/gamma (Eq 8) — how the user
// preference parameters shift the equilibrium allocation and the resulting
// network metrics. Sweeps the analytic solution densely, then validates
// three contrasting settings in full simulation.
#include <cstdio>

#include "campaign/runner.hpp"
#include "core/game/solver.hpp"
#include "scenario/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gttsch;
  using namespace gttsch::literals;

  // Part 1: analytic equilibrium surface (fast).
  std::printf("Ablation — game weights: analytic optimum l*_tx "
              "(rank hop 1, l_tx_min 1, l_rx 12, Qmax 16)\n\n");
  {
    TablePrinter t({"alpha", "beta", "gamma", "ETX=1 Q=2", "ETX=2 Q=2", "ETX=1 Q=14",
                    "ETX=3 Q=8"});
    for (const double alpha : {1.0, 2.0, 4.0, 8.0}) {
      for (const double beta : {0.5, 1.0, 2.0}) {
        for (const double gamma : {0.5, 1.0, 2.0}) {
          const game::Weights w{alpha, beta, gamma};
          auto solve = [&](double etx, double q) {
            game::PlayerState p;
            p.rank = 512;
            p.rank_min = 256;
            p.min_step_of_rank = 256;
            p.etx = etx;
            p.queue_avg = q;
            p.queue_max = 16;
            p.l_tx_min = 1;
            p.l_rx_parent = 12;
            return game::optimal_tx_slots(w, p);
          };
          t.add_row({TablePrinter::num(alpha, 1), TablePrinter::num(beta, 1),
                     TablePrinter::num(gamma, 1), TablePrinter::num(solve(1, 2), 2),
                     TablePrinter::num(solve(2, 2), 2), TablePrinter::num(solve(1, 14), 2),
                     TablePrinter::num(solve(3, 8), 2)});
        }
      }
    }
    t.print();
  }

  // Part 2: full-stack validation of three contrasting weightings.
  std::printf("\nAblation — game weights in simulation (1 DODAG, 7 nodes, 120 ppm)\n\n");
  struct Setting {
    const char* name;
    double alpha, beta, gamma;
  };
  const Setting settings[] = {
      {"balanced (4,1,1)", 4, 1, 1},
      {"link-averse (4,4,1)", 4, 4, 1},
      {"queue-first (4,1,4)", 4, 1, 4},
  };
  TablePrinter t({"weights", "PDR % (±sd)", "delay ms (±sd)", "queue loss/node",
                  "duty %"});
  for (const Setting& s : settings) {
    ScenarioConfig c;
    c.scheduler = "gt-tsch";
    c.dodag_count = 1;
    c.nodes_per_dodag = 7;
    c.traffic_ppm = 120.0;
    c.alpha = s.alpha;
    c.beta = s.beta;
    c.gamma = s.gamma;
    c.warmup = 180_s;
    c.measure = 240_s;
    const auto agg = campaign::run_point(c, default_seeds());
    t.add_row({s.name,
               TablePrinter::num(agg.pdr_percent.mean, 1) + " ±" +
                   TablePrinter::num(agg.pdr_percent.stddev, 1),
               TablePrinter::num(agg.avg_delay_ms.mean, 0) + " ±" +
                   TablePrinter::num(agg.avg_delay_ms.stddev, 0),
               TablePrinter::num(agg.queue_loss_per_node.mean, 2),
               TablePrinter::num(agg.duty_cycle_percent.mean, 2)});
  }
  t.print();
  return 0;
}
