// Ablation: GT-TSCH's structured channel allocation vs hash-based channel
// offsets (the Section III critique of Orchestra-style schedulers),
// quantified by medium-level collision counts and delivery metrics.
//
// GT-TSCH's allocator is compared against Orchestra with (a) one fixed
// unicast channel offset (Contiki-NG default) and (b) hashed per-receiver
// offsets — isolating how much of the gap is frequency planning.
#include <cstdio>

#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gttsch;
  using namespace gttsch::literals;

  std::printf("Ablation — channel allocation strategy vs collisions "
              "(1 DODAG, 9 nodes, 120 ppm)\n\n");

  auto base = [] {
    ScenarioConfig c;
    c.dodag_count = 1;
    c.nodes_per_dodag = 9;
    c.traffic_ppm = 120.0;
    c.warmup = 180_s;
    c.measure = 240_s;
    return c;
  };

  struct Variant {
    const char* name;
    const char* kind;  ///< SfRegistry key
    bool channel_hash;
  };
  const Variant variants[] = {
      {"GT-TSCH (Alg 1 channels)", "gt-tsch", false},
      {"Orchestra (fixed offset)", "orchestra", false},
      {"Orchestra (hashed offset)", "orchestra", true},
  };

  TablePrinter t({"variant", "PDR %", "collisions", "collision %", "PRR losses", "tx"});
  for (const Variant& v : variants) {
    ScenarioConfig c = base();
    c.scheduler = v.kind;
    c.orchestra_channel_hash = v.channel_hash;
    const auto agg = campaign::run_point(c, default_seeds());
    const MediumStats& medium = agg.medium_sum;
    const double collision_pct =
        medium.transmissions == 0
            ? 0.0
            : 100.0 * static_cast<double>(medium.collision_losses) /
                  static_cast<double>(medium.transmissions);
    t.add_row({v.name, TablePrinter::num(agg.pdr_percent.mean, 1),
               TablePrinter::num(static_cast<std::int64_t>(medium.collision_losses)),
               TablePrinter::num(collision_pct, 2),
               TablePrinter::num(static_cast<std::int64_t>(medium.prr_losses)),
               TablePrinter::num(static_cast<std::int64_t>(medium.transmissions))});
  }
  t.print();
  std::printf("\nExpectation: GT-TSCH's three-hop-unique channels suppress "
              "collision losses that hash-based offsets incur (Section III).\n");
  return 0;
}
