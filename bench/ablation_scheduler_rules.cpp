// Ablation: the Section V placement rules. Runs GT-TSCH with the rules
// individually disabled to quantify what each buys:
//   - no Tx>Rx margin  -> forwarders can oversubscribe and congest;
//   - no interleaving  -> bursts of consecutive Rx grow the queue (Fig 5).
#include <cstdio>

#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gttsch;
  using namespace gttsch::literals;

  std::printf("Ablation — Section V placement rules "
              "(2 DODAGs, 18 nodes, 165 ppm, queue capacity 4)\n\n");

  struct Variant {
    const char* name;
    bool margin;
    bool interleave;
  };
  const Variant variants[] = {
      {"all rules (paper)", true, true},
      {"no Tx>Rx margin", false, true},
      {"no Rx interleaving", true, false},
      {"neither rule", false, false},
  };

  TablePrinter t({"variant", "PDR % (±sd)", "delay ms (±sd)", "queue loss/node",
                  "loss/min", "throughput/min"});
  for (const Variant& v : variants) {
    ScenarioConfig c;
    c.scheduler = "gt-tsch";
    c.dodag_count = 2;
    c.nodes_per_dodag = 9;       // saturate the forwarders
    c.traffic_ppm = 165.0;
    c.queue_capacity = 4;        // the paper.s Fig 5 example: bursts bite
    c.enforce_tx_margin = v.margin;
    c.enforce_interleave = v.interleave;
    c.warmup = 180_s;
    c.measure = 240_s;
    const auto agg = campaign::run_point(c, default_seeds());
    t.add_row({v.name,
               TablePrinter::num(agg.pdr_percent.mean, 1) + " ±" +
                   TablePrinter::num(agg.pdr_percent.stddev, 1),
               TablePrinter::num(agg.avg_delay_ms.mean, 0) + " ±" +
                   TablePrinter::num(agg.avg_delay_ms.stddev, 0),
               TablePrinter::num(agg.queue_loss_per_node.mean, 2),
               TablePrinter::num(agg.loss_per_minute.mean, 1),
               TablePrinter::num(agg.throughput_per_minute.mean, 0)});
  }
  t.print();
  return 0;
}
