// Fig 9 (a-f): scalability — nodes per DODAG 6 -> 9 at 120 ppm
// (Section VIII, set 2; total network size 12 -> 18 over two DODAGs).
// Seeds parallelize on the campaign pool and the run shards/resumes like
// any campaign (--shard i/N, --journal/--resume, --ci-rel adaptive
// seeding); see run_figure for the full flag list.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::bench;

  std::printf("Fig 9 — performance vs DODAG size (2 DODAGs, 120 ppm/node)\n");

  std::vector<SweepPoint> points;
  for (const int size : {6, 7, 8, 9}) {
    SweepPoint p;
    p.label = TablePrinter::num(static_cast<std::int64_t>(size));
    p.gt = paper_base("gt-tsch");
    p.gt.nodes_per_dodag = size;
    p.orchestra = paper_base("orchestra");
    p.orchestra.nodes_per_dodag = size;
    points.push_back(std::move(p));
  }

  return run_figure(argc, argv, "Fig 9", "Nodes per DODAG", points);
}
