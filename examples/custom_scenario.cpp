// Fully parameterised scenario runner: every knob of ScenarioConfig on the
// command line. The "do anything" CLI for exploring the design space.
//
//   ./custom_scenario --scheduler=gt --dodags=2 --nodes=7 --ppm=120 --slotframe=32
//   ./custom_scenario --orchestra-unicast=8 --alpha=4 --beta=1 --gamma=1 --queue=16
//   ./custom_scenario --warmup-s=180 --measure-s=300 --seeds=3 --drift-ppm=0
#include <cstdio>

#include "scenario/experiment.hpp"
#include "sixp/sf_registry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::literals;

  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "options: --scheduler=%s --dodags=N --nodes=N --ppm=R\n",
        SfRegistry::instance().names_joined("|").c_str());
    std::puts(
        "         --slotframe=M --orchestra-unicast=L --alpha --beta --gamma\n"
        "         --queue=N --range=M --interference=F --prr=P\n"
        "         --warmup-s=S --measure-s=S --seeds=N --seed0=N --drift-ppm=D\n"
        "         --no-tx-margin --no-interleave");
    return 0;
  }

  ScenarioConfig c;
  // Any registry key or alias ("gt" canonicalises to "gt-tsch").
  const std::string scheduler = flags.get("scheduler", "gt");
  const SfRegistry::Entry* sf_entry = SfRegistry::instance().find(scheduler);
  if (sf_entry == nullptr) {
    std::fprintf(stderr, "unknown --scheduler=%s (expected %s)\n", scheduler.c_str(),
                 SfRegistry::instance().names_joined(", ").c_str());
    return 2;
  }
  c.scheduler = sf_entry->key;
  c.dodag_count = static_cast<int>(flags.get_int("dodags", 2));
  c.nodes_per_dodag = static_cast<int>(flags.get_int("nodes", 7));
  c.traffic_ppm = flags.get_double("ppm", 120.0);
  c.gt_slotframe_length = static_cast<std::uint16_t>(flags.get_int("slotframe", 32));
  c.orchestra_unicast_length =
      static_cast<std::uint16_t>(flags.get_int("orchestra-unicast", 8));
  c.alpha = flags.get_double("alpha", 4.0);
  c.beta = flags.get_double("beta", 1.0);
  c.gamma = flags.get_double("gamma", 1.0);
  c.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 16));
  c.radio_range = flags.get_double("range", 40.0);
  c.interference_factor = flags.get_double("interference", 1.6);
  c.link_prr = flags.get_double("prr", 1.0);
  c.warmup = flags.get_int("warmup-s", 180) * 1_s;
  c.measure = flags.get_int("measure-s", 300) * 1_s;
  c.enforce_tx_margin = !flags.get_bool("no-tx-margin", false);
  c.enforce_interleave = !flags.get_bool("no-interleave", false);
  const double drift = flags.get_double("drift-ppm", 0.0);

  const int n_seeds = static_cast<int>(flags.get_int("seeds", 3));
  const std::uint64_t seed0 = static_cast<std::uint64_t>(flags.get_int("seed0", 1000));

  for (const std::string& unknown : flags.unknown())
    std::fprintf(stderr, "warning: unknown flag --%s\n", unknown.c_str());

  std::printf("%s | %d DODAG(s) x %d nodes | %.0f ppm/node | slotframe %u | %d seed(s)\n\n",
              scheduler_name(c.scheduler), c.dodag_count, c.nodes_per_dodag, c.traffic_ppm,
              c.gt_slotframe_length, n_seeds);

  TablePrinter t({"seed", "PDR %", "delay ms", "loss/min", "duty %", "qloss/node",
                  "thr/min", "formed"});
  RunMetrics sum;
  for (int i = 0; i < n_seeds; ++i) {
    c.seed = seed0 + 17ull * static_cast<std::uint64_t>(i);
    // Drift needs the node-config hook, so build it explicitly.
    const TimeUs measure_end = c.warmup + c.measure;
    RunStats stats(c.warmup, measure_end);
    auto nc = c.make_node_config();
    nc.max_drift_ppm = drift;
    Network net(c.seed,
                std::make_unique<UnitDiskModel>(c.radio_range, c.link_prr,
                                                c.interference_factor),
                c.make_topology(), nc, &stats);
    net.sim().at(c.warmup, [&] { stats.begin_measurement(); });
    net.sim().at(measure_end, [&] { stats.end_measurement(); });
    net.start();
    net.sim().run_until(measure_end + c.drain);
    for (const auto& [id, node] : net.nodes())
      stats.set_joined(id, node->is_root() || node->rpl().joined());
    const RunMetrics m = stats.finalize();
    sum.pdr_percent += m.pdr_percent;
    sum.avg_delay_ms += m.avg_delay_ms;
    sum.loss_per_minute += m.loss_per_minute;
    sum.duty_cycle_percent += m.duty_cycle_percent;
    sum.queue_loss_per_node += m.queue_loss_per_node;
    sum.throughput_per_minute += m.throughput_per_minute;
    t.add_row({TablePrinter::num(static_cast<std::int64_t>(c.seed)),
               TablePrinter::num(m.pdr_percent, 1), TablePrinter::num(m.avg_delay_ms, 0),
               TablePrinter::num(m.loss_per_minute, 1),
               TablePrinter::num(m.duty_cycle_percent, 2),
               TablePrinter::num(m.queue_loss_per_node, 1),
               TablePrinter::num(m.throughput_per_minute, 0),
               net.fully_formed() ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nmean: PDR %.1f%% | delay %.0f ms | duty %.2f%% | throughput %.0f/min\n",
              sum.pdr_percent / n_seeds, sum.avg_delay_ms / n_seeds,
              sum.duty_cycle_percent / n_seeds, sum.throughput_per_minute / n_seeds);
  return 0;
}
