// Smart-building scenario (the paper's motivating deployment, Section
// VIII): one DODAG per floor, radio-isolated, all running GT-TSCH with
// floor-specific sensor rates. Prints per-floor and building-wide metrics.
//
//   ./smart_building [--floors=3] [--nodes=7] [--seed=3]
#include <cstdio>

#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::literals;

  Flags flags(argc, argv);
  const int floors = static_cast<int>(flags.get_int("floors", 3));
  const int nodes_per_floor = static_cast<int>(flags.get_int("nodes", 7));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  std::printf("Smart building: %d floors x %d nodes, GT-TSCH, HVAC sensors at\n"
              "30 ppm on even floors and occupancy sensors at 90 ppm on odd floors\n\n",
              floors, nodes_per_floor);

  // One network per floor (no common radio area — exactly the paper's
  // building-automation argument for per-DODAG scalability).
  const TimeUs warmup = 180_s;
  const TimeUs measure_end = warmup + 300_s;

  TablePrinter t({"floor", "rate ppm", "PDR %", "delay ms", "duty %", "thr/min"});
  double building_pdr = 0.0;
  for (int floor = 0; floor < floors; ++floor) {
    ScenarioConfig c;
    c.scheduler = "gt-tsch";
    c.dodag_count = 1;
    c.nodes_per_dodag = nodes_per_floor;
    c.traffic_ppm = (floor % 2 == 0) ? 30.0 : 90.0;
    c.seed = seed + static_cast<std::uint64_t>(floor);
    c.warmup = warmup;
    c.measure = measure_end - warmup;
    const auto r = run_scenario(c);
    building_pdr += r.metrics.pdr_percent;
    t.add_row({TablePrinter::num(static_cast<std::int64_t>(floor + 1)),
               TablePrinter::num(c.traffic_ppm, 0),
               TablePrinter::num(r.metrics.pdr_percent, 1),
               TablePrinter::num(r.metrics.avg_delay_ms, 0),
               TablePrinter::num(r.metrics.duty_cycle_percent, 2),
               TablePrinter::num(r.metrics.throughput_per_minute, 0)});
  }
  t.print();
  std::printf("\nbuilding-wide mean PDR: %.1f%%\n", building_pdr / floors);
  return 0;
}
