// Side-by-side GT-TSCH vs Orchestra on the paper's 14-node network at a
// chosen traffic load — a one-command version of the Fig 8 experiment.
//
//   ./scheduler_comparison [--ppm=120] [--seeds=2]
#include <cstdio>

#include "scenario/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::literals;

  Flags flags(argc, argv);
  const double ppm = flags.get_double("ppm", 120.0);
  const int n_seeds = static_cast<int>(flags.get_int("seeds", 2));

  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < n_seeds; ++i) seeds.push_back(7000 + 13ull * i);

  auto configure = [&](const std::string& kind) {
    ScenarioConfig c;
    c.scheduler = kind;
    c.dodag_count = 2;
    c.nodes_per_dodag = 7;
    c.traffic_ppm = ppm;
    c.warmup = 180_s;
    c.measure = 300_s;
    return c;
  };

  std::printf("Scheduler comparison: 14 nodes (2 DODAGs), %.0f ppm/node, %d seed(s)\n\n",
              ppm, n_seeds);
  const auto gt = run_averaged(configure("gt-tsch"), seeds);
  const auto orch = run_averaged(configure("orchestra"), seeds);

  TablePrinter t({"metric", "GT-TSCH", "Orchestra"});
  auto row = [&](const char* name, double a, double b, int prec) {
    t.add_row({name, TablePrinter::num(a, prec), TablePrinter::num(b, prec)});
  };
  row("PDR (%)", gt.mean.pdr_percent, orch.mean.pdr_percent, 1);
  row("avg delay (ms)", gt.mean.avg_delay_ms, orch.mean.avg_delay_ms, 0);
  row("packet loss (pkt/min)", gt.mean.loss_per_minute, orch.mean.loss_per_minute, 1);
  row("radio duty cycle (%)", gt.mean.duty_cycle_percent, orch.mean.duty_cycle_percent, 2);
  row("queue loss per node", gt.mean.queue_loss_per_node, orch.mean.queue_loss_per_node, 1);
  row("throughput (pkt/min)", gt.mean.throughput_per_minute, orch.mean.throughput_per_minute,
      0);
  t.print();

  const double pdr_gain = gt.mean.pdr_percent - orch.mean.pdr_percent;
  std::printf("\nGT-TSCH PDR advantage: %+.1f percentage points\n", pdr_gain);
  return 0;
}
