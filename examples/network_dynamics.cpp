// Network dynamics: watch GT-TSCH adapt while a link degrades mid-run.
// Records a per-second timeline (queue, ETX, allocated cells) to CSV,
// injects a PRR drop on the relay link at t=300s, and reports Firefly
// battery-life estimates from the measured radio activity.
//
//   ./network_dynamics [--csv=dynamics.csv] [--prr=0.5] [--seed=13]
#include <cstdio>

#include "phy/dynamic_link.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "stats/energy.hpp"
#include "stats/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::literals;

  Flags flags(argc, argv);
  const double degraded_prr = flags.get_double("prr", 0.5);
  const std::string csv_path = flags.get("csv", "dynamics.csv");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 13));

  // Line: root 1 - relay 2 - sensor 3; the 2-3 link fades at t=300s.
  const auto topo = build_line(1, {0, 0}, 2, 30.0);
  NodeStackConfig nc;
  {
    ScenarioConfig sc;
    sc.scheduler = "gt-tsch";
    sc.traffic_ppm = 60.0;
    nc = sc.make_node_config();
    nc.app_start = 120_s;
    nc.app_end = 0;
  }

  DynamicLinkModel* dyn = nullptr;
  Network net(
      seed,
      [&dyn](Simulator& sim) {
        auto model = std::make_unique<DynamicLinkModel>(
            sim, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6));
        dyn = model.get();
        return model;
      },
      topo, nc, nullptr);
  dyn->override_prr(300_s, 2, 3, degraded_prr);

  Timeline timeline(net.sim(), 1_s);
  timeline.add_gauge("n3_queue", [&] {
    return static_cast<double>(net.node(3).mac().data_queue_length());
  });
  timeline.add_gauge("n3_etx", [&] { return net.node(3).etx().etx(2); });
  timeline.add_gauge("n3_tx_cells", [&] {
    return static_cast<double>(net.node(3).sf().dedicated_tx_cells());
  });
  timeline.add_gauge("n2_tx_cells", [&] {
    return static_cast<double>(net.node(2).sf().dedicated_tx_cells());
  });
  timeline.add_gauge("n3_rank", [&] { return static_cast<double>(net.node(3).rpl().rank()); });

  std::vector<std::unique_ptr<EnergyMeter>> meters;
  net.start();
  net.sim().run_until(180_s);  // formation
  for (const auto& [id, node] : net.nodes())
    meters.push_back(std::make_unique<EnergyMeter>(node->radio()));
  timeline.start();
  net.sim().run_until(600_s);

  std::printf("Link 2-3 degraded to PRR %.2f at t=300s. Final state:\n", degraded_prr);
  std::printf("  n3 ETX to parent: %.2f (started near 1.0)\n", net.node(3).etx().etx(2));
  std::printf("  n3 rank: %u\n", net.node(3).rpl().rank());
  std::printf("  formed: %s\n\n", net.fully_formed() ? "yes" : "NO");

  if (timeline.write_csv(csv_path))
    std::printf("timeline written to %s (%zu samples, gauges:", csv_path.c_str(),
                timeline.samples().size());
  for (const auto& n : timeline.gauge_names()) std::printf(" %s", n.c_str());
  std::printf(")\n\n");

  // Battery budget over the measured window (420 s) on 2x AA (2600 mAh).
  TablePrinter t({"node", "avg current (mA)", "charge (mAh)", "est. lifetime (days)"});
  const TimeUs window = 600_s - 180_s;
  std::size_t i = 0;
  for (const auto& [id, node] : net.nodes()) {
    const auto& meter = *meters[i++];
    t.add_row({TablePrinter::num(static_cast<std::int64_t>(id)),
               TablePrinter::num(meter.average_current_ma(window), 3),
               TablePrinter::num(meter.charge_mah(window), 4),
               TablePrinter::num(meter.lifetime_days(2600.0, window), 0)});
  }
  t.print();
  std::printf("\n(The root listens the most and would be mains-powered in a\n"
              "real deployment; leaf lifetimes show the low-duty-cycle win.)\n");
  return 0;
}
