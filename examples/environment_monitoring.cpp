// Environment-monitoring scenario: a line of relay nodes with a lossy far
// link. Shows the ETX-aware game reacting to degraded links — the node
// behind the lossy hop requests fewer opportunistic cells (link cost,
// Eq 5) while the network keeps delivering.
//
//   ./environment_monitoring [--hops=3] [--prr=0.7] [--seed=9]
#include <cstdio>
#include <memory>

#include "core/gt_tsch_sf.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::literals;

  Flags flags(argc, argv);
  const int hops = static_cast<int>(flags.get_int("hops", 3));
  const double far_prr = flags.get_double("prr", 0.7);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));

  std::printf("Environment monitoring: %d-hop relay line, last link PRR %.2f\n\n", hops,
              far_prr);

  const auto topo = build_line(1, {0, 0}, hops, 30.0);

  // Per-link PRR table: perfect links except the farthest one.
  auto model = std::make_unique<MatrixLinkModel>();
  for (std::size_t i = 1; i < topo.nodes.size(); ++i) {
    const double prr = (i + 1 == topo.nodes.size()) ? far_prr : 1.0;
    model->set(topo.nodes[i - 1].id, topo.nodes[i].id, prr);
  }

  NodeStackConfig nc;
  {
    ScenarioConfig c;
    c.scheduler = "gt-tsch";
    c.traffic_ppm = 60.0;
    nc = c.make_node_config();
    nc.app_start = 120_s;
    nc.app_end = 0;
  }

  const TimeUs warmup = 240_s;
  const TimeUs measure_end = warmup + 300_s;
  RunStats stats(warmup, measure_end);
  Network net(seed, std::move(model), topo, nc, &stats);
  net.sim().at(warmup, [&] { stats.begin_measurement(); });
  net.sim().at(measure_end, [&] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(measure_end + 10_s);

  const RunMetrics m = stats.finalize();
  std::printf("formed: %s | PDR %.1f%% | delay %.0f ms | duty %.2f%%\n\n",
              net.fully_formed() ? "yes" : "NO", m.pdr_percent, m.avg_delay_ms,
              m.duty_cycle_percent);

  TablePrinter t({"node", "parent", "rank", "ETX to parent", "tx cells", "stage"});
  for (const auto& [id, node] : net.nodes()) {
    if (node->is_root()) continue;
    const auto* sf = dynamic_cast<const GtTschSf*>(&node->sf());
    const NodeId parent = node->rpl().parent();
    t.add_row({TablePrinter::num(static_cast<std::int64_t>(id)),
               TablePrinter::num(static_cast<std::int64_t>(parent)),
               TablePrinter::num(static_cast<std::int64_t>(node->rpl().rank())),
               TablePrinter::num(node->etx().etx(parent), 2),
               TablePrinter::num(static_cast<std::int64_t>(
                   sf != nullptr ? sf->allocated_tx_cells() : 0)),
               sf != nullptr && sf->stage() == GtTschSf::Stage::kOperational ? "operational"
                                                                             : "bootstrap"});
  }
  t.print();
  std::printf("\nNote the elevated ETX on the last hop: its holder pays a higher\n"
              "link cost (Eq 5), so the game assigns it less opportunistic headroom.\n");
  return 0;
}
