// Quickstart: build a 7-node GT-TSCH network, let it form, push traffic,
// and print the headline metrics. Mirrors the README's first example.
//
//   ./quickstart [--ppm=60] [--nodes=7] [--seed=1] [--minutes=5]
#include <cstdio>

#include "scenario/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::literals;

  Flags flags(argc, argv);
  ScenarioConfig config;
  config.scheduler = "gt-tsch";
  config.dodag_count = 1;
  config.nodes_per_dodag = static_cast<int>(flags.get_int("nodes", 7));
  config.traffic_ppm = flags.get_double("ppm", 60.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.warmup = 180_s;
  config.measure = flags.get_int("minutes", 5) * 60_s;

  std::printf("GT-TSCH quickstart: %d nodes, %.0f ppm/node, %.0f min measured\n",
              config.nodes_per_dodag, config.traffic_ppm, us_to_min(config.measure));
  std::printf("(network formation runs for %.0f s before measurement)\n\n",
              us_to_s(config.warmup));

  const ExperimentResult result = run_scenario(config);
  const RunMetrics& m = result.metrics;

  TablePrinter t({"metric", "value"});
  t.add_row({"network fully formed", result.fully_formed ? "yes" : "NO"});
  t.add_row({"packets generated", TablePrinter::num(static_cast<std::int64_t>(m.generated))});
  t.add_row({"packets delivered", TablePrinter::num(static_cast<std::int64_t>(m.delivered))});
  t.add_row({"packet delivery ratio (%)", TablePrinter::num(m.pdr_percent, 2)});
  t.add_row({"avg end-to-end delay (ms)", TablePrinter::num(m.avg_delay_ms, 1)});
  t.add_row({"p95 end-to-end delay (ms)", TablePrinter::num(m.p95_delay_ms, 1)});
  t.add_row({"packet loss (pkt/min)", TablePrinter::num(m.loss_per_minute, 2)});
  t.add_row({"radio duty cycle (%)", TablePrinter::num(m.duty_cycle_percent, 2)});
  t.add_row({"queue loss per node", TablePrinter::num(m.queue_loss_per_node, 2)});
  t.add_row({"throughput (pkt/min)", TablePrinter::num(m.throughput_per_minute, 1)});
  t.add_row({"mean route length (hops)", TablePrinter::num(m.mean_hops, 2)});
  t.print();

  std::printf("\nmedium: %llu transmissions, %llu collision losses, %llu PRR losses\n",
              static_cast<unsigned long long>(result.medium.transmissions),
              static_cast<unsigned long long>(result.medium.collision_losses),
              static_cast<unsigned long long>(result.medium.prr_losses));
  return result.fully_formed ? 0 : 1;
}
