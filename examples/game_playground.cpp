// Game playground: explore the Section VII model without a network.
// Prints the payoff landscape for one player, the closed-form optimum
// (Eq 15), the KKT certificate, and best-response convergence for a
// family of siblings sharing a parent budget.
//
//   ./game_playground [--alpha=4] [--beta=1] [--gamma=1] [--etx=1.5]
//                     [--queue=4] [--lmin=1] [--lrx=10]
#include <cstdio>

#include "core/game/nash.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gttsch;
  using namespace gttsch::game;

  Flags flags(argc, argv);
  const Weights w{flags.get_double("alpha", 4.0), flags.get_double("beta", 1.0),
                  flags.get_double("gamma", 1.0)};
  PlayerState p;
  p.rank = 512;
  p.rank_min = 256;
  p.min_step_of_rank = 256;
  p.etx = flags.get_double("etx", 1.5);
  p.queue_avg = flags.get_double("queue", 4.0);
  p.queue_max = 16;
  p.l_tx_min = flags.get_double("lmin", 1.0);
  p.l_rx_parent = flags.get_double("lrx", 10.0);

  std::printf("Payoff landscape (alpha=%.1f beta=%.1f gamma=%.1f, ETX=%.2f, Q=%.1f)\n\n",
              w.alpha, w.beta, w.gamma, p.etx, p.queue_avg);
  {
    TablePrinter t({"l_tx", "utility", "link cost", "queue cost", "payoff"});
    for (double s = p.l_tx_min; s <= p.l_rx_parent; s += 1.0) {
      t.add_row({TablePrinter::num(s, 0), TablePrinter::num(utility(p, s), 3),
                 TablePrinter::num(link_cost(p, s), 3),
                 TablePrinter::num(queue_cost(p, s), 3),
                 TablePrinter::num(payoff(w, p, s), 3)});
    }
    t.print();
  }

  const double x = unconstrained_optimum(w, p);
  const double s_star = optimal_tx_slots(w, p);
  const int s_int = optimal_tx_slots_int(w, p);
  const KktPoint kkt = solve_kkt(w, p);
  std::printf("\nEq 15 interior point X = %.4f\n", x);
  std::printf("optimal l_tx (clamped)  = %.4f  -> integer request %d\n", s_star, s_int);
  std::printf("KKT: w1=%.4f w2=%.4f, satisfied=%s\n", kkt.w1, kkt.w2,
              kkt_satisfied(w, p, kkt) ? "yes" : "NO");

  // A family of four siblings with different depths/links/queues sharing
  // the parent's budget of 10 Rx cells.
  std::printf("\nFour siblings sharing a 10-cell parent budget "
              "(best-response dynamics):\n\n");
  std::vector<PlayerState> family;
  for (int i = 0; i < 4; ++i) {
    PlayerState q = p;
    q.rank = 512 + 256 * (i % 2);
    q.etx = 1.0 + 0.5 * i;
    q.queue_avg = 2.0 + 4.0 * i;
    q.l_tx_min = i % 2;
    family.push_back(q);
  }
  TxAllocationGame game(w, family);
  const auto r = game.best_response_dynamics(std::vector<double>(4, 0.0),
                                             /*shared_capacity=*/10.0);
  TablePrinter t({"sibling", "rank", "ETX", "Q", "l_tx*"});
  for (std::size_t i = 0; i < family.size(); ++i) {
    t.add_row({TablePrinter::num(static_cast<std::int64_t>(i + 1)),
               TablePrinter::num(family[i].rank, 0), TablePrinter::num(family[i].etx, 2),
               TablePrinter::num(family[i].queue_avg, 1),
               TablePrinter::num(r.strategies[i], 3)});
  }
  t.print();
  std::printf("\nconverged in %d iteration(s); profile is Nash: %s\n", r.iterations,
              game.is_nash(r.strategies) ? "yes" : "no (capacity-coupled)");
  Rng rng(1);
  std::printf("diagonally strictly concave at equilibrium: %s\n",
              game.diagonally_strictly_concave(r.strategies, rng) ? "yes" : "NO");
  return 0;
}
